//! Property-based tests for the dense kernels.
//!
//! Strategy: generate random shapes/contents, and assert algebraic
//! invariants (reference equality, round-trips, residual bounds) rather
//! than fixed outputs.

use proptest::prelude::*;
use vbatch_dense::gen::{rand_mat, seeded_rng, spd_vec};
use vbatch_dense::naive;
use vbatch_dense::verify::{chol_residual, lu_residual, max_abs_diff_slices, residual_tol};
use vbatch_dense::{
    gemm, getrf, potf2, potrf_blocked, syrk, trmm, trsm, trtri, Diag, MatMut, MatRef, Side, Trans,
    Uplo,
};

fn trans_strategy() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::NoTrans), Just(Trans::Trans)]
}

fn uplo_strategy() -> impl Strategy<Value = Uplo> {
    prop_oneof![Just(Uplo::Lower), Just(Uplo::Upper)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_reference(
        m in 1usize..12, n in 1usize..12, k in 1usize..12,
        ta in trans_strategy(), tb in trans_strategy(),
        seed in 0u64..1_000_000,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
    ) {
        let mut rng = seeded_rng(seed);
        let (am, an) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
        let (bm, bn) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
        let a = rand_mat::<f64>(&mut rng, am * an);
        let b = rand_mat::<f64>(&mut rng, bm * bn);
        let c0 = rand_mat::<f64>(&mut rng, m * n);
        let mut c = c0.clone();
        gemm(ta, tb, alpha,
            MatRef::from_slice(&a, am, an, am),
            MatRef::from_slice(&b, bm, bn, bm),
            beta,
            MatMut::from_slice(&mut c, m, n, m));
        let want = naive::gemm_ref(ta, tb, alpha, &a, am, an, &b, bm, bn, beta, &c0, m, n);
        prop_assert!(max_abs_diff_slices(&c, &want) < 1e-11);
    }

    #[test]
    fn gemm_is_linear_in_alpha(
        m in 1usize..8, n in 1usize..8, k in 1usize..8,
        seed in 0u64..1_000_000, alpha in -3.0f64..3.0,
    ) {
        let mut rng = seeded_rng(seed);
        let a = rand_mat::<f64>(&mut rng, m * k);
        let b = rand_mat::<f64>(&mut rng, k * n);
        // C1 = alpha*A*B; C2 = A*B scaled by alpha afterwards.
        let mut c1 = vec![0.0f64; m * n];
        gemm(Trans::NoTrans, Trans::NoTrans, alpha,
            MatRef::from_slice(&a, m, k, m), MatRef::from_slice(&b, k, n, k),
            0.0, MatMut::from_slice(&mut c1, m, n, m));
        let mut c2 = vec![0.0f64; m * n];
        gemm(Trans::NoTrans, Trans::NoTrans, 1.0,
            MatRef::from_slice(&a, m, k, m), MatRef::from_slice(&b, k, n, k),
            0.0, MatMut::from_slice(&mut c2, m, n, m));
        for v in &mut c2 { *v *= alpha; }
        prop_assert!(max_abs_diff_slices(&c1, &c2) < 1e-11);
    }

    #[test]
    fn syrk_produces_symmetric_update(
        n in 1usize..10, k in 1usize..10, seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let a = rand_mat::<f64>(&mut rng, n * k);
        // Apply to both triangles separately; result must be symmetric.
        let mut lo = vec![0.0f64; n * n];
        let mut up = vec![0.0f64; n * n];
        syrk(Uplo::Lower, Trans::NoTrans, 1.0, MatRef::from_slice(&a, n, k, n),
            0.0, MatMut::from_slice(&mut lo, n, n, n));
        syrk(Uplo::Upper, Trans::NoTrans, 1.0, MatRef::from_slice(&a, n, k, n),
            0.0, MatMut::from_slice(&mut up, n, n, n));
        for j in 0..n {
            for i in j..n {
                prop_assert!((lo[i + j * n] - up[j + i * n]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trsm_trmm_roundtrip(
        m in 1usize..9, n in 1usize..9, seed in 0u64..1_000_000,
        side in prop_oneof![Just(Side::Left), Just(Side::Right)],
        uplo in uplo_strategy(), trans in trans_strategy(),
        diag in prop_oneof![Just(Diag::NonUnit), Just(Diag::Unit)],
    ) {
        let mut rng = seeded_rng(seed);
        let na = if side == Side::Left { m } else { n };
        let mut a = rand_mat::<f64>(&mut rng, na * na);
        for i in 0..na { a[i + i * na] = 2.0 + a[i + i * na].abs(); }
        let x0 = rand_mat::<f64>(&mut rng, m * n);
        let mut b = x0.clone();
        trmm(side, uplo, trans, diag, 1.0, MatRef::from_slice(&a, na, na, na),
            MatMut::from_slice(&mut b, m, n, m));
        trsm(side, uplo, trans, diag, 1.0, MatRef::from_slice(&a, na, na, na),
            MatMut::from_slice(&mut b, m, n, m));
        prop_assert!(max_abs_diff_slices(&b, &x0) < 1e-8);
    }

    #[test]
    fn potf2_residual_bounded(n in 1usize..40, seed in 0u64..1_000_000) {
        let mut rng = seeded_rng(seed);
        let orig = spd_vec::<f64>(&mut rng, n);
        let mut a = orig.clone();
        potf2(Uplo::Lower, MatMut::from_slice(&mut a, n, n, n)).unwrap();
        let r = chol_residual(Uplo::Lower,
            MatRef::from_slice(&a, n, n, n), MatRef::from_slice(&orig, n, n, n));
        prop_assert!(r < residual_tol::<f64>(n), "residual {r}");
    }

    #[test]
    fn potrf_blocked_residual_bounded(
        n in 1usize..64, nb in 1usize..16, seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let orig = spd_vec::<f64>(&mut rng, n);
        let mut a = orig.clone();
        potrf_blocked(Uplo::Lower, MatMut::from_slice(&mut a, n, n, n), nb).unwrap();
        let r = chol_residual(Uplo::Lower,
            MatRef::from_slice(&a, n, n, n), MatRef::from_slice(&orig, n, n, n));
        prop_assert!(r < residual_tol::<f64>(n), "residual {r}");
    }

    #[test]
    fn potf2_f32_residual_bounded(n in 1usize..32, seed in 0u64..1_000_000) {
        let mut rng = seeded_rng(seed);
        let orig = spd_vec::<f32>(&mut rng, n);
        let mut a = orig.clone();
        potf2(Uplo::Lower, MatMut::from_slice(&mut a, n, n, n)).unwrap();
        let r = chol_residual(Uplo::Lower,
            MatRef::from_slice(&a, n, n, n), MatRef::from_slice(&orig, n, n, n));
        prop_assert!(r < residual_tol::<f32>(n), "residual {r}");
    }

    #[test]
    fn getrf_residual_bounded(
        m in 1usize..32, n in 1usize..32, nb in 1usize..8, seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let orig = rand_mat::<f64>(&mut rng, m * n);
        let mut a = orig.clone();
        let mut p = vec![0usize; m.min(n)];
        getrf(MatMut::from_slice(&mut a, m, n, m), &mut p, nb).unwrap();
        let r = lu_residual(MatRef::from_slice(&a, m, n, m), &p,
            MatRef::from_slice(&orig, m, n, m));
        prop_assert!(r < residual_tol::<f64>(m.max(n)), "residual {r}");
        // Pivots must point at or below their row.
        for (i, &pv) in p.iter().enumerate() {
            prop_assert!(pv >= i && pv < m);
        }
    }

    #[test]
    fn trtri_then_multiply_is_identity(n in 1usize..24, seed in 0u64..1_000_000) {
        let mut rng = seeded_rng(seed);
        let mut t = rand_mat::<f64>(&mut rng, n * n);
        for j in 0..n {
            for i in 0..j { t[i + j * n] = 0.0; }
            t[j + j * n] = 2.0 + t[j + j * n].abs();
        }
        let mut inv = t.clone();
        trtri(Uplo::Lower, Diag::NonUnit, MatMut::from_slice(&mut inv, n, n, n)).unwrap();
        let prod = naive::gemm_ref(Trans::NoTrans, Trans::NoTrans, 1.0,
            &t, n, n, &inv, n, n, 0.0, &vec![0.0; n * n], n, n);
        for j in 0..n {
            for i in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                prop_assert!((prod[i + j * n] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn geqr2_and_geqrf_agree(
        m in 1usize..24, n in 1usize..24, nb in 1usize..8, seed in 0u64..1_000_000,
    ) {
        use vbatch_dense::{geqr2, geqrf};
        let mut rng = seeded_rng(seed);
        let orig = rand_mat::<f64>(&mut rng, m * n);
        let k = m.min(n);
        let mut a1 = orig.clone();
        let mut t1 = vec![0.0f64; k];
        geqr2(MatMut::from_slice(&mut a1, m, n, m), &mut t1);
        let mut a2 = orig.clone();
        let mut t2 = vec![0.0f64; k];
        geqrf(MatMut::from_slice(&mut a2, m, n, m), &mut t2, nb);
        // Same reflectors, same R (the blocked update is algebraically
        // identical to applying reflectors one by one).
        prop_assert!(max_abs_diff_slices(&a1, &a2) < 1e-9);
        prop_assert!(max_abs_diff_slices(&t1, &t2) < 1e-12);
    }

    #[test]
    fn larfb_equals_sequential_larf(
        m in 2usize..20, jb in 1usize..6, cols in 1usize..8, seed in 0u64..1_000_000,
    ) {
        use vbatch_dense::{geqr2, larf_left, larfb_left_t, larft};
        prop_assume!(jb <= m);
        let mut rng = seeded_rng(seed);
        // Build a reflector panel via geqr2.
        let mut panel = rand_mat::<f64>(&mut rng, m * jb);
        let mut tau = vec![0.0f64; jb];
        geqr2(MatMut::from_slice(&mut panel, m, jb, m), &mut tau);
        let c0 = rand_mat::<f64>(&mut rng, m * cols);

        // Blocked application.
        let v = MatRef::from_slice(&panel, m, jb, m);
        let mut t = vec![0.0f64; jb * jb];
        larft(v, &tau, &mut t);
        let mut c_blocked = c0.clone();
        larfb_left_t(v, &t, MatMut::from_slice(&mut c_blocked, m, cols, m));

        // One reflector at a time (forward order = Qᵀ).
        let mut c_seq = c0.clone();
        for (r, &tau_r) in tau.iter().enumerate() {
            if tau_r == 0.0 {
                continue;
            }
            let v_tail = v.sub(r + 1, r, m - r - 1, 1);
            let c_view = MatMut::from_slice(&mut c_seq, m, cols, m).sub(r, 0, m - r, cols);
            larf_left(v_tail, tau_r, c_view);
        }
        prop_assert!(max_abs_diff_slices(&c_blocked, &c_seq) < 1e-9);
    }

    #[test]
    fn laswp_roundtrip(n in 1usize..20, cols in 1usize..6, seed in 0u64..1_000_000) {
        use vbatch_dense::laswp;
        let mut rng = seeded_rng(seed);
        let orig = rand_mat::<f64>(&mut rng, n * cols);
        // Random valid pivot vector (p[i] >= i).
        let ipiv: Vec<usize> = (0..n)
            .map(|i| i + (seed as usize + i * 7) % (n - i))
            .collect();
        let mut a = orig.clone();
        laswp(MatMut::from_slice(&mut a, n, cols, n), 0, n, &ipiv);
        // Undo by applying the swaps in reverse order.
        for i in (0..n).rev() {
            if ipiv[i] != i {
                for c in 0..cols {
                    a.swap(i + c * n, ipiv[i] + c * n);
                }
            }
        }
        prop_assert_eq!(a, orig);
    }

    #[test]
    fn potf2_never_accepts_indefinite(n in 2usize..16, seed in 0u64..1_000_000) {
        // A symmetric matrix with a negative eigenvalue direction must fail.
        let mut rng = seeded_rng(seed);
        let mut a = spd_vec::<f64>(&mut rng, n);
        let col = seed as usize % n;
        a[col + col * n] = -1.0 - a[col + col * n].abs();
        let res = potf2(Uplo::Lower, MatMut::from_slice(&mut a, n, n, n));
        prop_assert!(res.is_err());
    }
}

// ---------------------------------------------------------------------
// Tier-oracle equivalence: both kernel tiers against the naive
// references, over every flag combination, boundary-biased sizes (the
// register tile MR/NR, the dispatch threshold, the trsm/syrk block
// edges) and non-unit leading dimensions.
// ---------------------------------------------------------------------

use vbatch_dense::level3::{tier, uses_blocked, MR, NR};

/// Sizes clustered on tile/threshold/block boundaries, ±1 around each,
/// plus 1 and small odd values.
fn boundary_dim(max: usize) -> impl Strategy<Value = usize> {
    let candidates: Vec<usize> = [
        1,
        2,
        3,
        NR - 1,
        NR,
        NR + 1,
        5,
        7,
        MR - 1,
        MR,
        MR + 1,
        11,
        12,
        13,
        17,
        31,
        32,
        33,
        47,
        48,
        49,
        63,
        64,
        65,
    ]
    .into_iter()
    .filter(|&v| v <= max)
    .collect();
    proptest::sample::select(candidates)
}

/// α/β biased toward the special-cased values 0 and 1.
fn coeff_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), Just(-1.0), -2.0f64..2.0]
}

/// Random `rows × cols` matrix stored with leading dimension `ld`
/// (`ld >= rows`); the `ld - rows` gap rows hold sentinel garbage so a
/// kernel that strays off a column shows up as a mismatch.
fn padded_mat(rng: &mut impl rand::Rng, rows: usize, cols: usize, ld: usize) -> Vec<f64> {
    let mut buf = rand_mat::<f64>(rng, ld * cols.max(1));
    for j in 0..cols {
        for i in rows..ld {
            buf[i + j * ld] = 1e30;
        }
    }
    buf
}

/// Extracts the `rows × cols` view of a padded buffer into packed
/// (`ld == rows`) storage, the layout the naive references use.
fn packed_from(buf: &[f64], rows: usize, cols: usize, ld: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(rows * cols);
    for j in 0..cols {
        out.extend_from_slice(&buf[j * ld..j * ld + rows]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_tiers_match_reference_any_ld(
        m in boundary_dim(65), n in boundary_dim(65), k in boundary_dim(65),
        ta in trans_strategy(), tb in trans_strategy(),
        pa in 0usize..3, pb in 0usize..3, pc in 0usize..3,
        alpha in coeff_strategy(), beta in coeff_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let (am, an) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
        let (bm, bn) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
        let (lda, ldb, ldc) = (am + pa, bm + pb, m + pc);
        let a = padded_mat(&mut rng, am, an, lda);
        let b = padded_mat(&mut rng, bm, bn, ldb);
        let c0 = padded_mat(&mut rng, m, n, ldc);

        let want = naive::gemm_ref(
            ta, tb, alpha,
            &packed_from(&a, am, an, lda), am, an,
            &packed_from(&b, bm, bn, ldb), bm, bn,
            beta, &packed_from(&c0, m, n, ldc), m, n,
        );

        let ar = MatRef::from_slice(&a, am, an, lda);
        let br = MatRef::from_slice(&b, bm, bn, ldb);
        let tol = 1e-10 * (k as f64 + 1.0);

        let mut c_small = c0.clone();
        tier::gemm_small(ta, tb, alpha, ar, br, beta,
            MatMut::from_slice(&mut c_small, m, n, ldc));
        prop_assert!(
            max_abs_diff_slices(&packed_from(&c_small, m, n, ldc), &want) < tol,
            "small tier mismatch ta={ta:?} tb={tb:?} m={m} n={n} k={k}"
        );

        let mut c_blocked = c0.clone();
        tier::gemm_blocked(ta, tb, alpha, ar, br, beta,
            MatMut::from_slice(&mut c_blocked, m, n, ldc));
        prop_assert!(
            max_abs_diff_slices(&packed_from(&c_blocked, m, n, ldc), &want) < tol,
            "blocked tier mismatch ta={ta:?} tb={tb:?} m={m} n={n} k={k}"
        );

        // The dispatching engine must agree with whichever tier it picks
        // (both threshold sides are exercised: k and n straddle 12 / 8).
        let _ = uses_blocked(m, n, k);
        let mut c_engine = c0.clone();
        gemm(ta, tb, alpha, ar, br, beta,
            MatMut::from_slice(&mut c_engine, m, n, ldc));
        prop_assert!(
            max_abs_diff_slices(&packed_from(&c_engine, m, n, ldc), &want) < tol,
            "engine mismatch ta={ta:?} tb={tb:?} m={m} n={n} k={k}"
        );
    }

    #[test]
    fn syrk_matches_reference_any_ld(
        n in boundary_dim(65), k in boundary_dim(65),
        uplo in uplo_strategy(), trans in trans_strategy(),
        pa in 0usize..3, pc in 0usize..3,
        alpha in coeff_strategy(), beta in coeff_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let (am, an) = if trans == Trans::NoTrans { (n, k) } else { (k, n) };
        let (lda, ldc) = (am + pa, n + pc);
        let a = padded_mat(&mut rng, am, an, lda);
        let c0 = padded_mat(&mut rng, n, n, ldc);

        let want = naive::syrk_ref(
            uplo, trans, alpha,
            &packed_from(&a, am, an, lda), n, k,
            beta, &packed_from(&c0, n, n, ldc),
        );

        let mut c = c0.clone();
        syrk(uplo, trans, alpha, MatRef::from_slice(&a, am, an, lda),
            beta, MatMut::from_slice(&mut c, n, n, ldc));
        prop_assert!(
            max_abs_diff_slices(&packed_from(&c, n, n, ldc), &want) < 1e-10 * (k as f64 + 1.0),
            "syrk mismatch uplo={uplo:?} trans={trans:?} n={n} k={k}"
        );
    }

    #[test]
    fn trmm_matches_reference_any_ld(
        m in boundary_dim(48), n in boundary_dim(48),
        side in prop_oneof![Just(Side::Left), Just(Side::Right)],
        uplo in uplo_strategy(), trans in trans_strategy(),
        diag in prop_oneof![Just(Diag::NonUnit), Just(Diag::Unit)],
        pa in 0usize..3, pb in 0usize..3,
        alpha in coeff_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let na = if side == Side::Left { m } else { n };
        let (lda, ldb) = (na + pa, m + pb);
        let a = padded_mat(&mut rng, na, na, lda);
        let b0 = padded_mat(&mut rng, m, n, ldb);

        let want = naive::trmm_ref(
            side, uplo, trans, diag, alpha,
            &packed_from(&a, na, na, lda), &packed_from(&b0, m, n, ldb), m, n,
        );

        let mut b = b0.clone();
        trmm(side, uplo, trans, diag, alpha, MatRef::from_slice(&a, na, na, lda),
            MatMut::from_slice(&mut b, m, n, ldb));
        prop_assert!(
            max_abs_diff_slices(&packed_from(&b, m, n, ldb), &want)
                < 1e-10 * (na as f64 + 1.0),
            "trmm mismatch side={side:?} uplo={uplo:?} trans={trans:?} diag={diag:?} m={m} n={n}"
        );
    }

    #[test]
    fn trsm_matches_reference_any_ld(
        m in boundary_dim(65), n in boundary_dim(48),
        side in prop_oneof![Just(Side::Left), Just(Side::Right)],
        uplo in uplo_strategy(), trans in trans_strategy(),
        diag in prop_oneof![Just(Diag::NonUnit), Just(Diag::Unit)],
        pa in 0usize..3, pb in 0usize..3,
        alpha in coeff_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let na = if side == Side::Left { m } else { n };
        let (lda, ldb) = (na + pa, m + pb);
        let mut a = padded_mat(&mut rng, na, na, lda);
        // Diagonal dominance keeps the substitution well-conditioned so
        // the elementwise comparison tolerance stays meaningful.
        for i in 0..na {
            a[i + i * lda] = 2.0 + a[i + i * lda].abs();
        }
        let b0 = padded_mat(&mut rng, m, n, ldb);

        let want = naive::trsm_ref(
            side, uplo, trans, diag, alpha,
            &packed_from(&a, na, na, lda), &packed_from(&b0, m, n, ldb), m, n,
        );

        let mut b = b0.clone();
        trsm(side, uplo, trans, diag, alpha, MatRef::from_slice(&a, na, na, lda),
            MatMut::from_slice(&mut b, m, n, ldb));
        // m up to 65 crosses the recursive split (TRSM_NB = 32) twice.
        prop_assert!(
            max_abs_diff_slices(&packed_from(&b, m, n, ldb), &want)
                < 1e-8 * (na as f64 + 1.0),
            "trsm mismatch side={side:?} uplo={uplo:?} trans={trans:?} diag={diag:?} m={m} n={n}"
        );
    }
}

/// Degenerate extents (`0` anywhere) must be no-ops or pure β-scales on
/// every tier — deterministic rather than property-based so each case
/// definitely runs.
#[test]
fn gemm_tiers_handle_zero_extents() {
    for &(m, n, k) in &[(0usize, 3usize, 3usize), (3, 0, 3), (3, 3, 0), (0, 0, 0)] {
        let a = vec![1.0f64; m.max(1) * k.max(1)];
        let b = vec![1.0f64; k.max(1) * n.max(1)];
        let c0 = vec![2.0f64; m.max(1) * n.max(1)];
        let ar = MatRef::from_slice(&a, m, k, m.max(1));
        let br = MatRef::from_slice(&b, k, n, k.max(1));
        for which in 0..3 {
            let mut c = c0.clone();
            let cm = MatMut::from_slice(&mut c, m, n, m.max(1));
            match which {
                0 => gemm(Trans::NoTrans, Trans::NoTrans, 1.0, ar, br, 0.5, cm),
                1 => tier::gemm_small(Trans::NoTrans, Trans::NoTrans, 1.0, ar, br, 0.5, cm),
                _ => tier::gemm_blocked(Trans::NoTrans, Trans::NoTrans, 1.0, ar, br, 0.5, cm),
            }
            // Only the live m×n corner may change, and only by β.
            for j in 0..n {
                for i in 0..m {
                    assert_eq!(c[i + j * m.max(1)], 1.0, "m={m} n={n} k={k} which={which}");
                }
            }
            if m == 0 || n == 0 {
                assert_eq!(c, c0, "degenerate view must not write m={m} n={n} k={k}");
            }
        }
    }
}
