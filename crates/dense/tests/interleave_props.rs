//! Property oracles for the interleaved batch tier.
//!
//! The tier's contract is stronger than a residual bound: per lane it
//! must be **bit-identical** to the scalar tier it mirrors. Every
//! comparison below is on raw bit patterns, never within a tolerance.

use proptest::prelude::*;
use vbatch_dense::gen::{rand_mat, seeded_rng, spd_vec};
use vbatch_dense::interleave::{
    gemm_nt_lanes, interleaved_len, lane_count, lane_index, pack_lanes, potrf_lanes, unpack_lane,
};
use vbatch_dense::level3::tier;
use vbatch_dense::{potf2, MatMut, MatRef, Trans, Uplo};

/// Packs square per-lane matrices (`sizes[l]` each) into a fresh group
/// buffer of extent `m`.
fn pack_square(m: usize, mats: &[Vec<f64>], sizes: &[usize]) -> Vec<f64> {
    let lanes = lane_count::<f64>();
    let mut buf = vec![0.0f64; interleaved_len(m, m, lanes)];
    let refs: Vec<MatRef<'_, f64>> = mats
        .iter()
        .zip(sizes)
        .map(|(v, &n)| MatRef::from_slice(v, n, n, n))
        .collect();
    pack_lanes(m, m, &refs, &mut buf);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_roundtrips_partial_mixed_groups(
        count in 1usize..5, // 1..=4 lanes: covers counts not divisible by L
        seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let lanes = lane_count::<f64>();
        prop_assert!(count <= lanes);
        // Mixed sizes within one window, including order-1 matrices.
        let sizes: Vec<usize> = (0..count).map(|l| 1 + (seed as usize + 3 * l) % 8).collect();
        let m = *sizes.iter().max().unwrap();
        let mats: Vec<Vec<f64>> = sizes.iter().map(|&n| rand_mat(&mut rng, n * n)).collect();
        let buf = pack_square(m, &mats, &sizes);
        for (l, (&n, orig)) in sizes.iter().zip(&mats).enumerate() {
            let mut out = vec![0.0f64; n * n];
            unpack_lane(&buf, m, l, MatMut::from_slice(&mut out, n, n, n));
            let ob: Vec<u64> = orig.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, ob, "lane {} did not roundtrip", l);
        }
        // Every absent lane and every padding element is exactly zero.
        for l in 0..lanes {
            let top = if l < count { sizes[l] } else { 0 };
            for j in 0..m {
                for i in 0..m {
                    if i >= top || j >= top {
                        prop_assert_eq!(
                            buf[lane_index(m, lanes, i, j, l)].to_bits(),
                            0u64,
                            "padding ({}, {}) lane {} not +0.0", i, j, l
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lane_potrf_bitwise_matches_scalar_tier(
        count in 1usize..5,
        corrupt in 0usize..3, // 0: all SPD; 1/2: one lane breaks down
        seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let lanes = lane_count::<f64>();
        prop_assert!(count <= lanes);
        let sizes: Vec<usize> = (0..count).map(|l| 1 + (seed as usize + 5 * l) % 12).collect();
        let m = *sizes.iter().max().unwrap();
        let mut mats: Vec<Vec<f64>> = sizes.iter().map(|&n| spd_vec(&mut rng, n)).collect();
        if corrupt > 0 {
            // Poison one diagonal entry so that lane breaks down there.
            let victim = (seed as usize) % count;
            let n = sizes[victim];
            let col = (seed as usize / 7) % n;
            mats[victim][col + col * n] = -1.0;
        }
        let mut buf = pack_square(m, &mats, &sizes);
        let mut infos = vec![0i32; count];
        potrf_lanes(&mut buf, m, &sizes, &mut infos);
        for (l, (&n, orig)) in sizes.iter().zip(&mats).enumerate() {
            // Scalar oracle: potf2 on the same input, in place.
            let mut want = orig.clone();
            let want_info = match potf2(Uplo::Lower, MatMut::from_slice(&mut want, n, n, n)) {
                Ok(()) => 0,
                Err(e) => e.info() as i32,
            };
            prop_assert_eq!(infos[l], want_info, "lane {} info", l);
            let mut got = vec![0.0f64; n * n];
            unpack_lane(&buf, m, l, MatMut::from_slice(&mut got, n, n, n));
            let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            // Success and breakdown lanes alike: the full in-place
            // state (factors, or partial factors + untouched tail)
            // matches the scalar tier bit-for-bit.
            prop_assert_eq!(gb, wb, "lane {} state diverged", l);
        }
    }

    #[test]
    fn lane_gemm_bitwise_matches_scalar_tier(
        m in 1usize..9, n in 1usize..9, k in 1usize..9,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        beta_zero in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let lanes = lane_count::<f64>();
        let beta = if beta_zero == 1 { 0.0 } else { beta };
        let a = rand_mat::<f64>(&mut rng, interleaved_len(m, k, lanes));
        let b = rand_mat::<f64>(&mut rng, interleaved_len(n, k, lanes));
        let c0 = rand_mat::<f64>(&mut rng, interleaved_len(m, n, lanes));
        let mut c = c0.clone();
        gemm_nt_lanes(m, n, k, alpha, &a, &b, beta, &mut c);
        for l in 0..lanes {
            // De-interleave this lane's operands and run the scalar
            // slice tier on them.
            let grab = |buf: &[f64], rows: usize, cols: usize| -> Vec<f64> {
                let mut v = vec![0.0f64; rows * cols];
                for j in 0..cols {
                    for i in 0..rows {
                        v[i + j * rows] = buf[lane_index(rows, lanes, i, j, l)];
                    }
                }
                v
            };
            let al = grab(&a, m, k);
            let bl = grab(&b, n, k);
            let mut cl = grab(&c0, m, n);
            tier::gemm_small(
                Trans::NoTrans,
                Trans::Trans,
                alpha,
                MatRef::from_slice(&al, m, k, m),
                MatRef::from_slice(&bl, n, k, n),
                beta,
                MatMut::from_slice(&mut cl, m, n, m),
            );
            let got = grab(&c, m, n);
            let wb: Vec<u64> = cl.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(gb, wb, "lane {} gemm diverged", l);
        }
    }
}
