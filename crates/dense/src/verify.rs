//! Residual-based verification of factorizations.
//!
//! Each checker reconstructs the original matrix from its factors and
//! returns a scaled residual (`‖A − reconstruction‖_F / (n·‖A‖_F)`); a
//! correctly implemented factorization keeps this within a small multiple
//! of machine epsilon. Tests assert against [`residual_tol`].

use crate::matrix::{MatRef, Uplo};
use crate::naive;
use crate::scalar::Scalar;

/// Frobenius norm of a packed column-major buffer.
pub fn fro_norm_slice<T: Scalar>(a: &[T]) -> f64 {
    a.iter()
        .map(|v| v.to_f64() * v.to_f64())
        .sum::<f64>()
        .sqrt()
}

/// Frobenius norm of a view.
pub fn fro_norm<T: Scalar>(a: MatRef<'_, T>) -> f64 {
    let mut acc = 0.0;
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            let v = a.get(i, j).to_f64();
            acc += v * v;
        }
    }
    acc.sqrt()
}

/// Maximum absolute element-wise difference of two equal-length buffers.
///
/// # Panics
/// If lengths differ.
pub fn max_abs_diff_slices<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.to_f64() - y.to_f64()).abs())
        .fold(0.0, f64::max)
}

/// Tolerance for a scaled residual of an order-`n` factorization in
/// precision `T`: `30·ε` with a floor that keeps tiny matrices from
/// producing vacuous bounds.
pub fn residual_tol<T: Scalar>(n: usize) -> f64 {
    let _ = n;
    30.0 * T::EPSILON.to_f64()
}

/// Scaled Cholesky residual `‖A − L·Lᵀ‖_F / (n·‖A‖_F)` (or `Uᵀ·U`).
///
/// `factored` holds the factor in its `uplo` triangle (other triangle
/// arbitrary); `original` is the matrix that was factorized. Both are
/// views of order `n` (leading dimensions may differ).
pub fn chol_residual<T: Scalar>(
    uplo: Uplo,
    factored: MatRef<'_, T>,
    original: MatRef<'_, T>,
) -> f64 {
    let n = factored.nrows();
    assert_eq!(factored.ncols(), n);
    assert_eq!(original.nrows(), n);
    assert_eq!(original.ncols(), n);
    if n == 0 {
        return 0.0;
    }
    let packed = factored.to_vec();
    let rec = match uplo {
        Uplo::Lower => naive::llt_ref(&packed, n, n),
        Uplo::Upper => naive::utu_ref(&packed, n, n),
    };
    let mut num = 0.0;
    for j in 0..n {
        for i in 0..n {
            let d = original.get(i, j).to_f64() - rec[i + j * n].to_f64();
            num += d * d;
        }
    }
    let denom = (n as f64) * fro_norm(original).max(f64::MIN_POSITIVE);
    num.sqrt() / denom
}

/// Scaled LU residual `‖P·A − L·U‖_F / (max(m,n)·‖A‖_F)`.
///
/// `factored` holds the in-place LU, `ipiv` the zero-based pivot rows in
/// `laswp` forward order, `original` the input matrix.
pub fn lu_residual<T: Scalar>(
    factored: MatRef<'_, T>,
    ipiv: &[usize],
    original: MatRef<'_, T>,
) -> f64 {
    let m = factored.nrows();
    let n = factored.ncols();
    assert_eq!(original.nrows(), m);
    assert_eq!(original.ncols(), n);
    if m == 0 || n == 0 {
        return 0.0;
    }
    let lu = naive::lu_ref(&factored.to_vec(), m, n, m);
    let pa = naive::permute_rows_ref(&original.to_vec(), m, n, ipiv);
    let mut num = 0.0;
    for idx in 0..m * n {
        let d = pa[idx].to_f64() - lu[idx].to_f64();
        num += d * d;
    }
    let denom = (m.max(n) as f64) * fro_norm(original).max(f64::MIN_POSITIVE);
    num.sqrt() / denom
}

/// Scaled QR residual `‖A − Q·R‖_F / (max(m,n)·‖A‖_F)` plus the
/// orthogonality defect `‖QᵀQ − I‖_F / k`, returned as
/// `(factor_residual, orthogonality)`.
///
/// `factored` holds the in-place Householder QR (R in the upper triangle,
/// reflectors below), `tau` the `min(m,n)` Householder scalars.
pub fn qr_residual<T: Scalar>(
    factored: MatRef<'_, T>,
    tau: &[T],
    original: MatRef<'_, T>,
) -> (f64, f64) {
    let m = factored.nrows();
    let n = factored.ncols();
    let k = m.min(n);
    assert_eq!(tau.len(), k);
    if m == 0 || n == 0 {
        return (0.0, 0.0);
    }

    // Build Q (m × m) explicitly by applying reflectors to the identity:
    // Q = H_0 · H_1 ⋯ H_{k−1}.
    let mut q = vec![T::ZERO; m * m];
    for i in 0..m {
        q[i + i * m] = T::ONE;
    }
    for j in (0..k).rev() {
        // v = [zeros(j); 1; A(j+1.., j)]
        let mut v = vec![T::ZERO; m];
        v[j] = T::ONE;
        for (i, vi) in v.iter_mut().enumerate().skip(j + 1) {
            *vi = factored.get(i, j);
        }
        // Q = (I − τ v vᵀ) Q  → for each column c: Q(:,c) −= τ v (vᵀ Q(:,c))
        for c in 0..m {
            let mut dot = T::ZERO;
            for i in j..m {
                dot += v[i] * q[i + c * m];
            }
            let t = tau[j] * dot;
            for i in j..m {
                let cur = q[i + c * m];
                q[i + c * m] = cur - v[i] * t;
            }
        }
    }

    // R: upper triangle (k × n padded to m rows with zeros).
    let mut r = vec![T::ZERO; m * n];
    for j in 0..n {
        for i in 0..=j.min(m - 1) {
            r[i + j * m] = factored.get(i, j);
        }
    }

    // ‖A − Q·R‖.
    let mut num = 0.0;
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for l in 0..m {
                acc += q[i + l * m].to_f64() * r[l + j * m].to_f64();
            }
            let d = original.get(i, j).to_f64() - acc;
            num += d * d;
        }
    }
    let denom = (m.max(n) as f64) * fro_norm(original).max(f64::MIN_POSITIVE);
    let fact_res = num.sqrt() / denom;

    // ‖QᵀQ − I‖ / m.
    let mut orth = 0.0;
    for j in 0..m {
        for i in 0..m {
            let mut acc = 0.0;
            for l in 0..m {
                acc += q[l + i * m].to_f64() * q[l + j * m].to_f64();
            }
            let d = acc - if i == j { 1.0 } else { 0.0 };
            orth += d * d;
        }
    }
    (fact_res, orth.sqrt() / m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatRef;

    #[test]
    fn norms_and_diffs() {
        let a = [3.0f64, 4.0];
        assert!((fro_norm_slice(&a) - 5.0).abs() < 1e-15);
        let b = [3.0f64, 6.0];
        assert_eq!(max_abs_diff_slices(&a, &b), 2.0);
        let v = MatRef::from_slice(&a, 2, 1, 2);
        assert!((fro_norm(v) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn chol_residual_zero_for_exact_factor() {
        // A = L·Lᵀ with L = [[2,0],[1,1]] → A = [[4,2],[2,2]].
        let l = [2.0f64, 1.0, 99.0, 1.0]; // upper garbage ignored
        let a = [4.0f64, 2.0, 2.0, 2.0];
        let r = chol_residual(
            Uplo::Lower,
            MatRef::from_slice(&l, 2, 2, 2),
            MatRef::from_slice(&a, 2, 2, 2),
        );
        assert!(r < 1e-15, "residual {r}");
    }

    #[test]
    fn chol_residual_detects_corruption() {
        let l = [2.0f64, 1.0, 0.0, 1.0];
        let mut a = [4.0f64, 2.0, 2.0, 2.0];
        a[0] = 10.0;
        let r = chol_residual(
            Uplo::Lower,
            MatRef::from_slice(&l, 2, 2, 2),
            MatRef::from_slice(&a, 2, 2, 2),
        );
        assert!(r > 0.1, "residual {r} should be large");
    }

    #[test]
    fn residual_tol_scales_with_precision() {
        assert!(residual_tol::<f32>(64) > residual_tol::<f64>(64));
    }
}
