//! Error reporting for factorization kernels.
//!
//! The paper's conclusion calls out LAPACK compliance — in particular how
//! to report per-matrix errors from a batched routine. We follow the
//! LAPACK `info` convention at the single-matrix level here; the batched
//! layer (`vbatch-core`) aggregates these into a per-batch report instead
//! of failing the whole batch.

use std::fmt;

/// Result alias for dense kernels.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the dense factorization kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// Cholesky hit a non-positive (or non-finite) pivot; the leading
    /// minor of order `column + 1` is not positive definite
    /// (LAPACK `info = column + 1`).
    NotPositiveDefinite {
        /// Zero-based column at which the factorization broke down.
        column: usize,
    },
    /// LU or triangular inversion hit an exactly-zero pivot
    /// (LAPACK `info = column + 1`).
    Singular {
        /// Zero-based column of the zero pivot.
        column: usize,
    },
    /// An argument violated a documented precondition.
    InvalidArgument(&'static str),
}

impl Error {
    /// LAPACK-style `info` value: positive column index (1-based) for
    /// numerical breakdown, `-1` for argument errors.
    #[must_use]
    pub fn info(&self) -> i64 {
        match self {
            Error::NotPositiveDefinite { column } | Error::Singular { column } => {
                *column as i64 + 1
            }
            Error::InvalidArgument(_) => -1,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotPositiveDefinite { column } => write!(
                f,
                "matrix is not positive definite (leading minor of order {})",
                column + 1
            ),
            Error::Singular { column } => {
                write!(
                    f,
                    "matrix is singular (zero pivot at column {})",
                    column + 1
                )
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_values_follow_lapack() {
        assert_eq!(Error::NotPositiveDefinite { column: 0 }.info(), 1);
        assert_eq!(Error::Singular { column: 4 }.info(), 5);
        assert_eq!(Error::InvalidArgument("x").info(), -1);
    }

    #[test]
    fn display_is_descriptive() {
        let s = Error::NotPositiveDefinite { column: 2 }.to_string();
        assert!(s.contains("order 3"));
        let s = Error::Singular { column: 0 }.to_string();
        assert!(s.contains("column 1"));
    }
}
