//! Column-major matrix views with explicit leading dimension.
//!
//! The vbatched interface of the paper describes every matrix by a
//! `(pointer, n, lda)` triple; these views are the Rust shape of that
//! triple. [`MatRef`] is a shared view, [`MatMut`] an exclusive one.
//!
//! Both are *raw* views: they hold a pointer, dimensions and a leading
//! dimension, plus a lifetime tying them to the underlying storage when
//! constructed safely from slices. The `unsafe` constructors
//! ([`MatMut::from_raw_parts`]) exist for the simulated GPU kernels,
//! where many thread blocks concurrently update disjoint tiles of the
//! same device allocation — exactly the CUDA contract. Constructing
//! overlapping *mutable* views and writing to the same element from two
//! blocks is a data race, as it would be on real hardware.

use std::marker::PhantomData;

/// Which triangle of a symmetric/triangular matrix is referenced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Uplo {
    /// Lower triangle (the paper's Cholesky case study works on `L`).
    Lower,
    /// Upper triangle.
    Upper,
}

impl Uplo {
    /// The opposite triangle.
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Uplo::Lower => Uplo::Upper,
            Uplo::Upper => Uplo::Lower,
        }
    }
}

/// Transposition selector for BLAS kernels (real precisions only, so
/// conjugate-transpose folds into [`Trans::Trans`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Operate on `A`.
    NoTrans,
    /// Operate on `Aᵀ`.
    Trans,
}

/// Side selector for `trsm`/`trmm`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Triangular matrix is applied from the left: solve `op(A)·X = B`.
    Left,
    /// Triangular matrix is applied from the right: solve `X·op(A) = B`.
    Right,
}

/// Unit-diagonal selector for triangular kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Diag {
    /// Diagonal entries are general.
    NonUnit,
    /// Diagonal entries are implicitly one and never referenced.
    Unit,
}

/// Shared column-major view of an `m × n` matrix with leading dimension
/// `ld ≥ m`.
pub struct MatRef<'a, T> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a T>,
}

impl<T> Clone for MatRef<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for MatRef<'_, T> {}

// SAFETY: a MatRef only permits reads, and the lifetime ties it to storage
// that outlives it; sharing reads across threads is sound for T: Sync.
unsafe impl<T: Sync> Send for MatRef<'_, T> {}
unsafe impl<T: Sync> Sync for MatRef<'_, T> {}

impl<'a, T> MatRef<'a, T> {
    /// Creates a view over `data` interpreted column-major with leading
    /// dimension `ld`.
    ///
    /// # Panics
    /// If `ld < rows` (for `rows > 0`) or `data` is too short to hold the
    /// last element `(rows-1, cols-1)`.
    pub fn from_slice(data: &'a [T], rows: usize, cols: usize, ld: usize) -> Self {
        check_extent(data.len(), rows, cols, ld);
        Self {
            ptr: data.as_ptr(),
            rows,
            cols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Creates a view from a raw pointer.
    ///
    /// # Safety
    /// `ptr` must be valid for reads of the column-major extent
    /// `ld·(cols−1) + rows` for the duration of `'a`, and no exclusive
    /// access to those elements may be exercised concurrently.
    pub unsafe fn from_raw_parts(ptr: *const T, rows: usize, cols: usize, ld: usize) -> Self {
        debug_assert!(rows == 0 || ld >= rows);
        Self {
            ptr,
            rows,
            cols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }
    /// Leading dimension (column stride).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }
    /// Raw pointer to the `(0,0)` element.
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Reads element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        // SAFETY: in-bounds per the construction contract and the assert.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Sub-view of size `m × n` starting at `(i, j)`.
    #[must_use]
    pub fn sub(&self, i: usize, j: usize, m: usize, n: usize) -> MatRef<'a, T> {
        debug_assert!(i + m <= self.rows && j + n <= self.cols);
        MatRef {
            // SAFETY: stays within the original extent.
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            rows: m,
            cols: n,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Contiguous slice over column `j` (`rows` elements).
    ///
    /// Columns are the contiguous axis of a column-major view, so this
    /// is the bridge from element-wise `get` loops to auto-vectorizable
    /// slice kernels. Forming the slice asserts the usual shared-view
    /// contract: none of these elements may be written concurrently.
    #[inline]
    pub fn col_as_slice(&self, j: usize) -> &'a [T] {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        // SAFETY: the construction contract guarantees `rows` readable
        // elements at column offset `j·ld`, and the shared view forbids
        // concurrent writes to elements it covers.
        unsafe { std::slice::from_raw_parts(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Splits into the first `i` rows and the rest.
    #[must_use]
    pub fn split_at_row(self, i: usize) -> (MatRef<'a, T>, MatRef<'a, T>) {
        assert!(
            i <= self.rows,
            "row split {i} out of bounds ({})",
            self.rows
        );
        (
            self.sub(0, 0, i, self.cols),
            self.sub(i, 0, self.rows - i, self.cols),
        )
    }

    /// Splits into the first `j` columns and the rest.
    #[must_use]
    pub fn split_at_col(self, j: usize) -> (MatRef<'a, T>, MatRef<'a, T>) {
        assert!(
            j <= self.cols,
            "column split {j} out of bounds ({})",
            self.cols
        );
        (
            self.sub(0, 0, self.rows, j),
            self.sub(0, j, self.rows, self.cols - j),
        )
    }

    /// Copies this view into a dense `rows × cols` vector (ld = rows).
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Copy,
    {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for j in 0..self.cols {
            for i in 0..self.rows {
                out.push(self.get(i, j));
            }
        }
        out
    }
}

/// Exclusive column-major view of an `m × n` matrix with leading
/// dimension `ld ≥ m`.
pub struct MatMut<'a, T> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: `MatMut` is an exclusive view handing out mutation only
// through &mut self; transferring them across threads is the whole
// point of block-parallel kernels, under the documented disjointness
// contract.
unsafe impl<T: Send> Send for MatMut<'_, T> {}
unsafe impl<T: Sync> Sync for MatMut<'_, T> {}

impl<'a, T> MatMut<'a, T> {
    /// Creates an exclusive view over `data` (column-major, leading
    /// dimension `ld`).
    ///
    /// # Panics
    /// If `ld < rows` (for `rows > 0`) or `data` is too short.
    pub fn from_slice(data: &'a mut [T], rows: usize, cols: usize, ld: usize) -> Self {
        check_extent(data.len(), rows, cols, ld);
        Self {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Creates an exclusive view from a raw pointer.
    ///
    /// # Safety
    /// `ptr` must be valid for reads and writes of the column-major
    /// extent `ld·(cols−1) + rows` for `'a`, and no other view may access
    /// any element this view writes, concurrently. Tiles of a common
    /// allocation may interleave in memory (`ld` gaps) as long as the
    /// *element sets* touched by concurrent owners are disjoint.
    pub unsafe fn from_raw_parts(ptr: *mut T, rows: usize, cols: usize, ld: usize) -> Self {
        debug_assert!(rows == 0 || ld >= rows);
        Self {
            ptr,
            rows,
            cols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }
    /// Leading dimension (column stride).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }
    /// Raw pointer to the `(0,0)` element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    /// Reads element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        // SAFETY: in-bounds per the construction contract and the assert.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Writes element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        // SAFETY: in-bounds per the construction contract and the assert.
        unsafe { *self.ptr.add(i + j * self.ld) = v }
    }

    /// Shared view of the same data.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Shared view carrying the *full* storage lifetime, usable while
    /// this view keeps mutating — the BLAS aliasing idiom (e.g. `trsm`
    /// reading `L11` while updating `A21` of the same allocation).
    ///
    /// All element access goes through raw pointers (no `&`/`&mut`
    /// references to the data are ever formed), so interleaved reads and
    /// writes within one thread are well-defined; across threads the
    /// [`MatMut::from_raw_parts`] disjointness contract applies.
    #[inline]
    pub fn alias_ref(&self) -> MatRef<'a, T> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Reborrows, yielding an exclusive view with a shorter lifetime so
    /// the original can be used again afterwards.
    #[inline]
    pub fn rb(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Exclusive sub-view of size `m × n` starting at `(i, j)`,
    /// consuming this view (reborrow first to keep it).
    #[must_use]
    pub fn sub(self, i: usize, j: usize, m: usize, n: usize) -> MatMut<'a, T> {
        debug_assert!(i + m <= self.rows && j + n <= self.cols);
        MatMut {
            // SAFETY: stays within the original extent.
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            rows: m,
            cols: n,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Contiguous shared slice over column `j` (`rows` elements).
    #[inline]
    pub fn col_as_slice(&self, j: usize) -> &[T] {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        // SAFETY: in-bounds per the construction contract; `&self`
        // prevents mutation through this view for the borrow's duration.
        unsafe { std::slice::from_raw_parts(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Contiguous exclusive slice over column `j` (`rows` elements).
    ///
    /// This is the write half of the slice-kernel bridge: an axpy into a
    /// column becomes a plain `&mut [T]` loop the compiler vectorizes.
    #[inline]
    pub fn col_as_mut_slice(&mut self, j: usize) -> &mut [T] {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        // SAFETY: in-bounds per the construction contract; `&mut self`
        // makes this the only live access path to the column.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Borrows column `dst` mutably and column `src` immutably at once
    /// (`dst != src`), for in-place column sweeps like the right-side
    /// `trsm`/`trmm` updates `B(:,dst) ← B(:,dst) ± B(:,src)·a`.
    ///
    /// # Panics
    /// If `dst == src` or either column is out of bounds.
    #[inline]
    pub fn col_pair_mut(&mut self, dst: usize, src: usize) -> (&mut [T], &[T]) {
        assert!(dst != src, "col_pair_mut requires distinct columns");
        assert!(dst < self.cols && src < self.cols, "column out of bounds");
        // SAFETY: ld ≥ rows is enforced at construction, so distinct
        // columns occupy disjoint index ranges; both are in-bounds.
        unsafe {
            (
                std::slice::from_raw_parts_mut(self.ptr.add(dst * self.ld), self.rows),
                std::slice::from_raw_parts(self.ptr.add(src * self.ld), self.rows),
            )
        }
    }

    /// Splits into the first `i` rows and the rest, two exclusive views.
    #[must_use]
    pub fn split_at_row(self, i: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(
            i <= self.rows,
            "row split {i} out of bounds ({})",
            self.rows
        );
        let rows = self.rows;
        let cols = self.cols;
        let ld = self.ld;
        let top = MatMut {
            ptr: self.ptr,
            rows: i,
            cols,
            ld,
            _marker: PhantomData,
        };
        let bottom = MatMut {
            // SAFETY: stays within the original extent; the two views
            // cover disjoint element sets (same columns, disjoint rows).
            ptr: unsafe { self.ptr.add(i) },
            rows: rows - i,
            cols,
            ld,
            _marker: PhantomData,
        };
        (top, bottom)
    }

    /// Splits into the first `j` columns and the rest, two exclusive views.
    #[must_use]
    pub fn split_at_col(self, j: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(
            j <= self.cols,
            "column split {j} out of bounds ({})",
            self.cols
        );
        let rows = self.rows;
        let cols = self.cols;
        let ld = self.ld;
        let left = MatMut {
            ptr: self.ptr,
            rows,
            cols: j,
            ld,
            _marker: PhantomData,
        };
        let right = MatMut {
            // SAFETY: stays within the original extent; disjoint columns.
            ptr: unsafe { self.ptr.add(j * ld) },
            rows,
            cols: cols - j,
            ld,
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Fills the view with `v`.
    pub fn fill(&mut self, v: T)
    where
        T: Copy,
    {
        for j in 0..self.cols {
            for i in 0..self.rows {
                self.set(i, j, v);
            }
        }
    }

    /// Copies `src` (same dimensions) into this view.
    ///
    /// # Panics
    /// If dimensions differ.
    pub fn copy_from(&mut self, src: MatRef<'_, T>)
    where
        T: Copy,
    {
        assert_eq!(
            (self.rows, self.cols),
            (src.nrows(), src.ncols()),
            "shape mismatch"
        );
        for j in 0..self.cols {
            for i in 0..self.rows {
                self.set(i, j, src.get(i, j));
            }
        }
    }
}

fn check_extent(len: usize, rows: usize, cols: usize, ld: usize) {
    if rows == 0 || cols == 0 {
        return;
    }
    assert!(ld >= rows, "leading dimension {ld} < row count {rows}");
    let need = ld * (cols - 1) + rows;
    assert!(
        len >= need,
        "slice of length {len} too short for {rows}x{cols} (ld {ld}): need {need}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_get_set() {
        let mut data = vec![0.0f64; 12];
        let mut m = MatMut::from_slice(&mut data, 3, 4, 3);
        for j in 0..4 {
            for i in 0..3 {
                m.set(i, j, (i * 10 + j) as f64);
            }
        }
        let r = m.as_ref();
        assert_eq!(r.get(2, 3), 23.0);
        assert_eq!(r.get(0, 0), 0.0);
        // Column-major layout check.
        assert_eq!(data[3], 1.0); // (0,1)
    }

    #[test]
    fn leading_dimension_respected() {
        // 2x2 view inside a 4-row buffer.
        let mut data = vec![0.0f64; 4 * 2];
        {
            let mut m = MatMut::from_slice(&mut data, 2, 2, 4);
            m.set(1, 1, 7.0);
        }
        assert_eq!(data[4 + 1], 7.0);
        assert_eq!(data[2], 0.0); // padding rows untouched
    }

    #[test]
    fn subview_offsets() {
        let mut data: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let m = MatMut::from_slice(&mut data, 4, 4, 4);
        let s = m.as_ref().sub(1, 2, 2, 2);
        assert_eq!(s.get(0, 0), 9.0); // element (1,2) = 1 + 2*4
        assert_eq!(s.get(1, 1), 14.0); // element (2,3) = 2 + 3*4
    }

    #[test]
    fn sub_mut_and_reborrow() {
        let mut data = vec![0.0f64; 16];
        let mut m = MatMut::from_slice(&mut data, 4, 4, 4);
        {
            let mut tile = m.rb().sub(2, 2, 2, 2);
            tile.fill(5.0);
        }
        assert_eq!(m.get(2, 2), 5.0);
        assert_eq!(m.get(3, 3), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn copy_from_and_to_vec() {
        let src_data: Vec<f64> = (0..6).map(|x| x as f64).collect();
        let src = MatRef::from_slice(&src_data, 3, 2, 3);
        let mut dst_data = vec![0.0f64; 10];
        let mut dst = MatMut::from_slice(&mut dst_data, 3, 2, 5);
        dst.copy_from(src);
        assert_eq!(dst.as_ref().to_vec(), src_data);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn extent_check_fires() {
        let data = vec![0.0f64; 5];
        let _ = MatRef::from_slice(&data, 3, 2, 3);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn ld_check_fires() {
        let data = vec![0.0f64; 16];
        let _ = MatRef::from_slice(&data, 4, 4, 2);
    }

    #[test]
    fn zero_sized_views_ok() {
        let data: Vec<f64> = vec![];
        let m = MatRef::from_slice(&data, 0, 0, 0);
        assert_eq!(m.nrows(), 0);
        let m2 = MatRef::from_slice(&data, 0, 5, 0);
        assert_eq!(m2.ncols(), 5);
    }

    #[test]
    fn uplo_flip() {
        assert_eq!(Uplo::Lower.flip(), Uplo::Upper);
        assert_eq!(Uplo::Upper.flip(), Uplo::Lower);
    }

    #[test]
    fn col_slices_respect_ld() {
        // 3x2 view in a 5-row buffer: columns are rows 0..3 of each stripe.
        let mut data: Vec<f64> = (0..10).map(|x| x as f64).collect();
        let mut m = MatMut::from_slice(&mut data, 3, 2, 5);
        assert_eq!(m.as_ref().col_as_slice(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.col_as_slice(1), &[5.0, 6.0, 7.0]);
        m.col_as_mut_slice(1).iter_mut().for_each(|v| *v += 100.0);
        assert_eq!(data[5..8], [105.0, 106.0, 107.0]);
        assert_eq!(data[8], 8.0); // ld padding untouched
    }

    #[test]
    fn col_pair_mut_disjoint() {
        let mut data = vec![1.0f64; 8];
        let mut m = MatMut::from_slice(&mut data, 4, 2, 4);
        let (dst, src) = m.col_pair_mut(1, 0);
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d += 2.0 * s;
        }
        assert_eq!(&data[4..], &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn col_pair_mut_same_column_panics() {
        let mut data = vec![0.0f64; 4];
        let mut m = MatMut::from_slice(&mut data, 2, 2, 2);
        let _ = m.col_pair_mut(1, 1);
    }

    #[test]
    fn splits_partition_the_view() {
        let mut data: Vec<f64> = (0..16).map(|x| x as f64).collect();
        {
            let m = MatMut::from_slice(&mut data, 4, 4, 4);
            let (mut top, mut bottom) = m.split_at_row(1);
            assert_eq!((top.nrows(), bottom.nrows()), (1, 3));
            top.fill(-1.0);
            bottom.fill(-2.0);
        }
        assert_eq!(data[0], -1.0);
        assert_eq!(data[4], -1.0);
        assert_eq!(data[1], -2.0);
        let m2 = MatRef::from_slice(&data, 4, 4, 4);
        let (l, r) = m2.split_at_col(3);
        assert_eq!((l.ncols(), r.ncols()), (3, 1));
        assert_eq!(r.get(0, 0), m2.get(0, 3));
        // Degenerate splits at the boundary.
        let (e, f) = m2.split_at_col(0);
        assert_eq!((e.ncols(), f.ncols()), (0, 4));
    }
}
