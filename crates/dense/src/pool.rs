//! Fixed-size worker pool for the multicore host engine.
//!
//! This is the *only* place in the workspace allowed to spawn threads
//! (enforced by `vbatch-analyze` rule VBA202): all host-side parallelism
//! goes through one pool so thread count, dispatch order and scratch
//! ownership stay auditable. The pool is deliberately minimal:
//!
//! * **Fixed workers, one job at a time.** [`WorkerPool::new`] spawns
//!   `threads - 1` workers; [`WorkerPool::run`] publishes a job, runs
//!   one slice of it on the calling thread, and blocks until every
//!   worker finished its slice. A pool of one thread spawns nothing and
//!   runs the job inline, so the single-threaded path has zero
//!   synchronization overhead.
//! * **Zero allocation per dispatch.** Publishing a job writes a raw
//!   pointer and bumps an epoch under a mutex; no `Box`, no channel.
//!   This keeps the warm host-engine path allocation-free (pinned by
//!   the bench-crate counting-allocator tests).
//! * **Determinism is the caller's contract.** The pool imposes no
//!   ordering between workers; callers must hand each worker a disjoint
//!   slice of independent work so results are bitwise identical for any
//!   thread count.
//!
//! Thread count resolution ([`resolved_threads`]): the `VBATCH_THREADS`
//! environment variable when set (floor 1), otherwise
//! `std::thread::available_parallelism()`.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The job type workers execute: called once per worker with the
/// worker's index in `0..threads`.
pub type Job<'a> = &'a (dyn Fn(usize) + Sync);

/// Thread count from the environment: `VBATCH_THREADS` when set and
/// parseable (floor 1), else `available_parallelism()` (floor 1).
#[must_use]
pub fn resolved_threads() -> usize {
    match std::env::var("VBATCH_THREADS") {
        Ok(s) => s.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

/// A lifetime-erased pointer to the current job. Workers only ever
/// dereference it between the epoch bump that published it and the
/// completion notification that [`WorkerPool::run`] blocks on, which is
/// what makes the erasure sound (see SAFETY notes below).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: JobPtr is only a courier. The pointee is a `Sync` closure
// (shared calls from many threads are fine), and `run` keeps the
// original reference alive, blocked, until every worker reported done —
// so sending the pointer to worker threads never outlives the borrow.
unsafe impl Send for JobPtr {}

struct Slot {
    epoch: u64,
    job: Option<JobPtr>,
    remaining: usize,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Workers sleep here waiting for a new epoch (or shutdown).
    work_cv: Condvar,
    /// `run` sleeps here waiting for `remaining` to hit zero.
    done_cv: Condvar,
}

/// Fixed pool of `threads - 1` worker threads plus the calling thread.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool presenting `threads` lanes of parallelism (floor 1): the
    /// calling thread plus `threads - 1` spawned workers.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vbatch-host-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .unwrap_or_else(|e| panic!("spawn host worker {w}: {e}"))
            })
            .collect();
        Self {
            shared,
            handles,
            threads,
        }
    }

    /// A pool sized by [`resolved_threads`] (`VBATCH_THREADS` override,
    /// default available parallelism).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(resolved_threads())
    }

    /// The number of parallel lanes (worker threads + the caller).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(w)` once for every lane `w in 0..threads()`, on the
    /// workers and the calling thread, and returns when all are done.
    /// Lane `threads() - 1` runs on the calling thread. Allocates
    /// nothing.
    pub fn run(&self, job: Job<'_>) {
        if self.handles.is_empty() {
            job(0);
            return;
        }
        {
            let mut slot = lock(&self.shared.slot);
            debug_assert_eq!(slot.remaining, 0, "pool runs one job at a time");
            // SAFETY: lifetime erasure only — the borrow stays alive
            // (and this thread stays blocked in `run`) until every
            // worker is done with the pointer; soundness argued at
            // `JobPtr`.
            let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
            slot.job = Some(JobPtr(erased as *const _));
            slot.epoch = slot.epoch.wrapping_add(1);
            slot.remaining = self.handles.len();
            self.shared.work_cv.notify_all();
        }
        // The caller is the last lane; doing real work here means a
        // T-thread pool uses T cores, not T+1 threads on T cores.
        job(self.threads - 1);
        let mut slot = lock(&self.shared.slot);
        while slot.remaining > 0 {
            slot = self
                .shared
                .done_cv
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        slot.job = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.shared.slot);
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker only panics if the job panicked; propagating the
            // panic out of drop would abort, so surface it as a log.
            if h.join().is_err() {
                eprintln!("vbatch host worker panicked");
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut slot = lock(&shared.slot);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen_epoch {
                    seen_epoch = slot.epoch;
                    break;
                }
                slot = shared
                    .work_cv
                    .wait(slot)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            match slot.job {
                Some(j) => j,
                None => continue,
            }
        };
        // SAFETY: `run` published this pointer under the current epoch
        // and will not return (or invalidate the borrow) until this
        // worker decrements `remaining` below; the pointee is `Sync`.
        unsafe { (*job.0)(index) };
        let mut slot = lock(&shared.slot);
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_lane_runs_exactly_once_per_dispatch() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run(&|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn disjoint_writes_land() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 3 * 17];
        let chunks: Vec<&mut [usize]> = out.chunks_mut(17).collect();
        let cell = std::sync::Mutex::new(chunks);
        pool.run(&|w| {
            // Each lane takes its own chunk; the mutex is only the
            // hand-out mechanism, work is disjoint.
            let ptr = {
                let guard = cell
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                guard[w].as_ptr() as usize
            };
            let s = unsafe { std::slice::from_raw_parts_mut(ptr as *mut usize, 17) };
            for (i, v) in s.iter_mut().enumerate() {
                *v = w * 1000 + i;
            }
        });
        for w in 0..3 {
            for i in 0..17 {
                assert_eq!(out[w * 17 + i], w * 1000 + i);
            }
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }
}
