//! Scalar abstraction over the real floating-point precisions.
//!
//! The paper evaluates single and double precision (`SPOTRF` / `DPOTRF`);
//! the framework also "supports complex precisions", which this
//! reproduction leaves out of scope (the performance mechanisms under
//! study are precision-agnostic beyond the flop/byte ratios captured
//! here).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable by every kernel in the workspace.
///
/// The two associated constants [`Scalar::IS_DOUBLE`] and
/// [`Scalar::BYTES`] feed the simulator's cost model: Kepler-class GPUs
/// have separate single- and double-precision throughput, and memory
/// traffic scales with the element width.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;
    /// Width of one element in bytes (4 or 8).
    const BYTES: usize;
    /// Whether this is the double-precision type (drives the DP/SP
    /// throughput split in the device cost model).
    const IS_DOUBLE: bool;
    /// Short LAPACK-style precision prefix, `"s"` or `"d"`.
    const PREFIX: &'static str;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Lossy conversion from `f64` (used by generators and tolerances).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by verification and norms).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b`. The f32/f64 impls call the
    /// hardware FMA: the kernel engine's hot loops fund half their
    /// throughput on it (Rust never contracts `a*b + c` on its own), and
    /// the workspace builds with `target-cpu=native` so it lowers to a
    /// real instruction rather than a libm call.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `true` when the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;

    /// Runs `f` over a thread-local scratch buffer of `len` elements
    /// whose contents are unspecified (typically stale data from the
    /// previous call) — callers must write every region they read.
    ///
    /// The blocked level-3 kernels pack `op(A)`/`op(B)` panels on every
    /// call; routing that through a per-thread buffer that only ever
    /// grows means steady-state packing performs **no allocation at all**
    /// (the paper's batched regime calls these kernels thousands of times
    /// per factorization sweep). Re-entrant calls on the same thread fall
    /// back to a fresh allocation instead of aliasing the buffer.
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R;
}

/// Implements [`Scalar::with_scratch`] against a per-precision
/// thread-local `Vec`. The buffer is handed out as-is (not re-zeroed):
/// the packing routines overwrite every element they expose, and a
/// defensive fill would cost more than the packing itself on small
/// operands.
macro_rules! impl_with_scratch {
    ($t:ty, $tls:ident) => {
        thread_local! {
            static $tls: core::cell::RefCell<Vec<$t>> =
                const { core::cell::RefCell::new(Vec::new()) };
        }

        impl ScratchProvider for $t {
            fn with_scratch_impl<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R {
                $tls.with(|cell| match cell.try_borrow_mut() {
                    Ok(mut buf) => {
                        if buf.len() < len {
                            buf.resize(len, 0.0);
                        }
                        f(&mut buf[..len])
                    }
                    // Re-entrant use (a kernel nested inside another
                    // kernel's scratch closure): don't alias, allocate.
                    Err(_) => f(&mut vec![0.0; len]),
                    // (fresh fallback happens to be zeroed, but the
                    // contract leaves contents unspecified)
                })
            }
        }
    };
}

/// Internal helper trait so the macro can live outside the `Scalar` impl
/// blocks while `Scalar::with_scratch` stays a single forwarding call.
trait ScratchProvider: Sized {
    fn with_scratch_impl<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R;
}

impl_with_scratch!(f32, SCRATCH_F32);
impl_with_scratch!(f64, SCRATCH_F64);

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const BYTES: usize = 4;
    const IS_DOUBLE: bool = false;
    const PREFIX: &'static str = "s";

    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R {
        <f32 as ScratchProvider>::with_scratch_impl(len, f)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const BYTES: usize = 8;
    const IS_DOUBLE: bool = true;
    const PREFIX: &'static str = "d";

    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R {
        <f64 as ScratchProvider>::with_scratch_impl(len, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(T::from_f64(4.0).sqrt().to_f64(), 2.0);
        assert_eq!(T::from_f64(-3.0).abs().to_f64(), 3.0);
        assert!(T::ONE.is_finite());
        assert!(!(T::ONE / T::ZERO).is_finite());
    }

    // Checked through a generic parameter so each assertion compares two
    // runtime values rather than a compile-time constant.
    fn meta<T: Scalar>(bytes: usize, is_double: bool, prefix: &str) {
        assert_eq!(T::BYTES, bytes);
        assert_eq!(T::IS_DOUBLE, is_double);
        assert_eq!(T::PREFIX, prefix);
    }

    #[test]
    fn f32_contract() {
        roundtrip::<f32>();
        meta::<f32>(4, false, "s");
    }

    #[test]
    fn f64_contract() {
        roundtrip::<f64>();
        meta::<f64>(8, true, "d");
    }

    #[test]
    fn mul_add_matches() {
        let x: f64 = 3.0;
        assert_eq!(x.mul_add(2.0, 1.0), 7.0);
    }

    #[test]
    fn scratch_is_reused_without_reallocation() {
        let ptr1 = f64::with_scratch(64, |s| {
            assert_eq!(s.len(), 64);
            s.fill(3.0);
            s.as_ptr() as usize
        });
        // Same thread, same (or smaller) size: the buffer is reused.
        let ptr2 = f64::with_scratch(32, |s| {
            assert_eq!(s.len(), 32);
            s.as_ptr() as usize
        });
        assert_eq!(ptr1, ptr2);
    }

    #[test]
    fn scratch_reentrant_does_not_alias() {
        f32::with_scratch(16, |outer| {
            outer.fill(1.0);
            f32::with_scratch(16, |inner| {
                inner.fill(2.0);
            });
            assert!(outer.iter().all(|&v| v == 1.0));
        });
    }
}
