//! Scalar abstraction over the real floating-point precisions.
//!
//! The paper evaluates single and double precision (`SPOTRF` / `DPOTRF`);
//! the framework also "supports complex precisions", which this
//! reproduction leaves out of scope (the performance mechanisms under
//! study are precision-agnostic beyond the flop/byte ratios captured
//! here).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable by every kernel in the workspace.
///
/// The two associated constants [`Scalar::IS_DOUBLE`] and
/// [`Scalar::BYTES`] feed the simulator's cost model: Kepler-class GPUs
/// have separate single- and double-precision throughput, and memory
/// traffic scales with the element width.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;
    /// Width of one element in bytes (4 or 8).
    const BYTES: usize;
    /// Whether this is the double-precision type (drives the DP/SP
    /// throughput split in the device cost model).
    const IS_DOUBLE: bool;
    /// Short LAPACK-style precision prefix, `"s"` or `"d"`.
    const PREFIX: &'static str;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Lossy conversion from `f64` (used by generators and tolerances).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used by verification and norms).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b` (semantically; may not lower to
    /// a hardware FMA in all builds).
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    /// `true` when the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const BYTES: usize = 4;
    const IS_DOUBLE: bool = false;
    const PREFIX: &'static str = "s";

    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const BYTES: usize = 8;
    const IS_DOUBLE: bool = true;
    const PREFIX: &'static str = "d";

    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(T::from_f64(4.0).sqrt().to_f64(), 2.0);
        assert_eq!(T::from_f64(-3.0).abs().to_f64(), 3.0);
        assert!(T::ONE.is_finite());
        assert!(!(T::ONE / T::ZERO).is_finite());
    }

    #[test]
    fn f32_contract() {
        roundtrip::<f32>();
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f32::IS_DOUBLE, false);
        assert_eq!(f32::PREFIX, "s");
    }

    #[test]
    fn f64_contract() {
        roundtrip::<f64>();
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f64::IS_DOUBLE, true);
        assert_eq!(f64::PREFIX, "d");
    }

    #[test]
    fn mul_add_matches() {
        let x: f64 = 3.0;
        assert_eq!(x.mul_add(2.0, 1.0), 7.0);
    }
}
