//! Small dense linear algebra kernels for variable-size batched computation.
//!
//! This crate provides the LAPACK/BLAS-style building blocks that both the
//! simulated GPU kernels (`vbatch-core`) and the CPU baselines
//! (`vbatch-baselines`) are built from:
//!
//! * column-major matrix views with an explicit leading dimension
//!   ([`MatRef`], [`MatMut`]),
//! * level-3 BLAS kernels ([`gemm`], [`syrk`], [`trsm`], [`trmm`]),
//! * unblocked and blocked one-sided factorizations ([`potf2`],
//!   [`potrf_blocked`], [`getf2`], [`getrf`], [`geqr2`], [`geqrf`]),
//! * triangular inversion ([`trtri`]) used by the vbatched `trsm` design,
//! * flop-count formulas matching the conventions the paper uses to report
//!   Gflop/s ([`flops`]),
//! * seeded generators for SPD and general test matrices ([`gen`]) and
//!   residual-based verification ([`verify`]).
//!
//! All kernels operate on matrices of *small* order (the paper's regime is
//! roughly 1–1024) and are written as straightforward, cache-friendly
//! loops; they are deliberately simple so that the simulated thread blocks
//! executing them remain easy to cost-model.
//!
//! `unsafe` code is confined to the raw-view constructors in [`matrix`]
//! (which carry the CUDA-like contract that concurrently executing
//! thread blocks touch disjoint elements) and the AVX2 paths in
//! [`level3`] and [`interleave`]; every unsafe operation sits in an
//! explicit block behind its own `SAFETY:` comment (enforced by
//! `unsafe_op_in_unsafe_fn` below plus the workspace `vbatch-analyze`
//! pass and its `analyze.toml` budget).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod error;
pub mod flops;
pub mod gen;
pub mod interleave;
pub mod matrix;
pub mod naive;
pub mod scalar;
pub mod verify;

mod factor;
/// Level-3 kernels and the two-tier engine internals ([`level3::tier`],
/// [`level3::uses_blocked`], tiling constants) for tests and benches.
pub mod level3;
pub mod pool;
pub mod tune;

pub use error::{Error, Result};
pub use factor::{
    geqr2, geqrf, getf2, getrf, getrs, larf_left, larfb_left_t, larft, laswp, lauum, potf2,
    potrf_blocked, potri, potrs, trtri,
};
pub use level3::{gemm, syrk, trmm, trsm};
pub use matrix::{Diag, MatMut, MatRef, Side, Trans, Uplo};
pub use scalar::Scalar;
