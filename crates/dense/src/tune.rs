//! Runtime tile-scheme configuration for the blocked and interleaved
//! tiers.
//!
//! The blocked GEMM tier historically ran on compile-time constants
//! (MR 8 / NR 4 / MC 64 / KC 256) chosen once on one machine, and the
//! interleave cutoff (32) was a second hand-picked constant in
//! `vbatch-core`. Deshmukh & Yokota (PAPERS.md) show these parameters
//! are strongly CPU-dependent and searchable with a small sweep, so
//! this module turns them into a first-class runtime value:
//!
//! - [`TileScheme`] carries `(mr, nr, mc, kc, ilv_cutoff)` per
//!   precision, with [`TileScheme::DEFAULT`] reproducing the historical
//!   constants exactly.
//! - [`active`] returns the scheme the process is running with. It is
//!   resolved once (at first use) from a committed `TUNE.json` produced
//!   by the `tune` binary in `crates/bench`, and falls back to the
//!   defaults when the file is absent, malformed, or was tuned on a
//!   host whose CPU features don't match this one. `VBATCH_TUNE=off`
//!   pins the defaults; `VBATCH_TUNE=<path>` loads a specific file.
//!
//! The fallback rule is deliberately strict (exact feature-set match):
//! a scheme tuned with AVX-512 microkernels in play says nothing about
//! an AVX2-only machine, and silently applying it would make cross-host
//! benchmark trajectories incomparable. A mismatch is reported once on
//! stderr and the defaults — bit-identical to the pre-tuning tree —
//! take over.
//!
//! No external JSON dependency exists in this workspace, so the loader
//! ships a ~100-line recursive-descent parser for the subset of JSON
//! the schema uses. Every failure path degrades to defaults with a
//! warning; nothing in this module panics on bad input.

use std::any::TypeId;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::scalar::Scalar;

/// Widest register-tile row count any microkernel supports (AVX-512
/// f32: one 16-lane vector per C column; f64: two 8-lane vectors).
pub const MR_MAX: usize = 16;
/// Widest register-tile column count any microkernel supports.
pub const NR_MAX: usize = 8;

/// Runtime tile/packing parameters for one precision.
///
/// `mr × nr` is the register tile shape, `mc × kc` the cache-blocking
/// panel shape, and `ilv_cutoff` the largest window order routed to the
/// interleaved batched-small tier by `vbatch-core`'s fused driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileScheme {
    /// Register-tile rows (micro-panel height of packed `op(A)`).
    pub mr: usize,
    /// Register-tile columns (micro-panel width of packed `op(B)`).
    pub nr: usize,
    /// Cache block over `m`; must be a positive multiple of `mr`.
    pub mc: usize,
    /// Cache block over `k`; clamped to the operand's `k` at use sites.
    pub kc: usize,
    /// Largest window order the fused driver interleaves.
    pub ilv_cutoff: usize,
}

impl TileScheme {
    /// The hand-picked constants the workspace shipped with; every
    /// fallback path resolves to exactly this value.
    pub const DEFAULT: Self = Self {
        mr: 8,
        nr: 4,
        mc: 64,
        kc: 256,
        ilv_cutoff: 32,
    };

    /// Checks the scheme against the invariants the packing and
    /// microkernel layers rely on. Returns a human-readable reason on
    /// rejection.
    ///
    /// # Errors
    /// When any field is out of range: `mr ∉ 1..=MR_MAX`,
    /// `nr ∉ 1..=NR_MAX`, `mc < mr`, `mc` not a multiple of `mr`,
    /// `kc == 0` or implausibly large, or `ilv_cutoff ∉ 1..=64`.
    pub fn validate(&self) -> Result<(), String> {
        if self.mr == 0 || self.mr > MR_MAX {
            return Err(format!("mr={} outside 1..={MR_MAX}", self.mr));
        }
        if self.nr == 0 || self.nr > NR_MAX {
            return Err(format!("nr={} outside 1..={NR_MAX}", self.nr));
        }
        if self.mc < self.mr {
            return Err(format!("mc={} smaller than mr={}", self.mc, self.mr));
        }
        if !self.mc.is_multiple_of(self.mr) {
            return Err(format!("mc={} not a multiple of mr={}", self.mc, self.mr));
        }
        if self.kc == 0 || self.kc > 8192 {
            return Err(format!("kc={} outside 1..=8192", self.kc));
        }
        if self.ilv_cutoff == 0 || self.ilv_cutoff > 64 {
            return Err(format!("ilv_cutoff={} outside 1..=64", self.ilv_cutoff));
        }
        Ok(())
    }
}

impl Default for TileScheme {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// The CPU feature set a `TUNE.json` was produced under. A tuned scheme
/// is honored only when the recorded set matches [`CpuFeatures::detect`]
/// on the running host exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuFeatures {
    /// 256-bit integer/FP vectors.
    pub avx2: bool,
    /// Fused multiply-add.
    pub fma: bool,
    /// 512-bit foundation (wide microkernels gate on this).
    pub avx512f: bool,
    /// AVX-512 vector-length extensions.
    pub avx512vl: bool,
}

impl CpuFeatures {
    /// Runtime feature probe. Always all-false under Miri (the
    /// interpreter has no vector units) and on non-x86 targets, which
    /// routes every dispatch to the portable scalar paths.
    #[must_use]
    pub fn detect() -> Self {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            Self {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
                avx512vl: std::arch::is_x86_feature_detected!("avx512vl"),
            }
        }
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        {
            Self::default()
        }
    }
}

/// Resolved process-wide tuning state: one scheme per precision plus a
/// human-readable provenance string for bench metadata.
#[derive(Debug, Clone)]
pub struct Active {
    /// Scheme applied to `f64` kernels.
    pub f64_scheme: TileScheme,
    /// Scheme applied to `f32` kernels.
    pub f32_scheme: TileScheme,
    /// Where the schemes came from (`"defaults"`, `"defaults
    /// (VBATCH_TUNE=off)"`, or the TUNE.json path).
    pub source: String,
}

impl Active {
    fn defaults(source: &str) -> Self {
        Self {
            f64_scheme: TileScheme::DEFAULT,
            f32_scheme: TileScheme::DEFAULT,
            source: source.to_owned(),
        }
    }
}

static ACTIVE: OnceLock<Active> = OnceLock::new();

/// The process-wide tuning state, resolved on first use (see module
/// docs for the resolution order).
pub fn active_info() -> &'static Active {
    ACTIVE.get_or_init(load)
}

/// The active [`TileScheme`] for precision `T`.
#[must_use]
pub fn active<T: Scalar>() -> TileScheme {
    let info = active_info();
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        info.f32_scheme
    } else {
        info.f64_scheme
    }
}

fn warn(msg: &str) {
    eprintln!("vbatch-dense: tuning: {msg}; using default tile scheme");
}

fn load() -> Active {
    match std::env::var("VBATCH_TUNE") {
        Ok(v) if v == "off" || v == "0" => return Active::defaults("defaults (VBATCH_TUNE=off)"),
        Ok(path) => {
            return load_file(Path::new(&path)).unwrap_or_else(|why| {
                warn(&format!("VBATCH_TUNE={path}: {why}"));
                Active::defaults("defaults (VBATCH_TUNE load failed)")
            });
        }
        Err(_) => {}
    }
    match find_tune_json() {
        Some(path) => load_file(&path).unwrap_or_else(|why| {
            warn(&format!("{}: {why}", path.display()));
            Active::defaults("defaults (TUNE.json load failed)")
        }),
        None => Active::defaults("defaults"),
    }
}

/// Looks for `TUNE.json` in the current directory and a few parents:
/// `cargo test` runs with the package directory as CWD, while the
/// committed file lives at the workspace root two levels up.
fn find_tune_json() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    for _ in 0..6 {
        let cand = dir.join("TUNE.json");
        if cand.is_file() {
            return Some(cand);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

fn load_file(path: &Path) -> Result<Active, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = json::parse(&text).ok_or("not valid JSON")?;
    let schema = doc.get("schema").and_then(Json::as_u64);
    if schema != Some(1) {
        return Err(format!("unsupported schema version {schema:?}"));
    }
    let cpu = doc.get("cpu").ok_or("missing \"cpu\" section")?;
    let feat = |name: &str| cpu.get(name).and_then(Json::as_bool).unwrap_or(false);
    let recorded = CpuFeatures {
        avx2: feat("avx2"),
        fma: feat("fma"),
        avx512f: feat("avx512f"),
        avx512vl: feat("avx512vl"),
    };
    let here = CpuFeatures::detect();
    if recorded != here {
        return Err(format!(
            "tuned for {recorded:?} but this host is {here:?} (feature mismatch)"
        ));
    }
    let schemes = doc.get("schemes").ok_or("missing \"schemes\" section")?;
    let f64_scheme = parse_scheme(schemes.get("f64").ok_or("missing schemes.f64")?)?;
    let f32_scheme = parse_scheme(schemes.get("f32").ok_or("missing schemes.f32")?)?;
    Ok(Active {
        f64_scheme,
        f32_scheme,
        source: path.display().to_string(),
    })
}

fn parse_scheme(obj: &Json) -> Result<TileScheme, String> {
    let field = |name: &str| -> Result<usize, String> {
        obj.get(name)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("missing or non-integer field \"{name}\""))
    };
    let ts = TileScheme {
        mr: field("mr")?,
        nr: field("nr")?,
        mc: field("mc")?,
        kc: field("kc")?,
        ilv_cutoff: field("ilv_cutoff")?,
    };
    ts.validate()?;
    Ok(ts)
}

/// Serializes a tuning result into the `TUNE.json` schema the loader
/// accepts (shared by the `tune` binary and the roundtrip tests).
#[must_use]
pub fn render_tune_json(
    cpu: &CpuFeatures,
    cores: usize,
    f64_scheme: &TileScheme,
    f32_scheme: &TileScheme,
) -> String {
    let scheme = |ts: &TileScheme| {
        format!(
            "{{ \"mr\": {}, \"nr\": {}, \"mc\": {}, \"kc\": {}, \"ilv_cutoff\": {} }}",
            ts.mr, ts.nr, ts.mc, ts.kc, ts.ilv_cutoff
        )
    };
    format!(
        "{{\n  \"schema\": 1,\n  \"cpu\": {{ \"avx2\": {}, \"fma\": {}, \"avx512f\": {}, \"avx512vl\": {} }},\n  \"cores\": {},\n  \"schemes\": {{\n    \"f64\": {},\n    \"f32\": {}\n  }}\n}}\n",
        cpu.avx2,
        cpu.fma,
        cpu.avx512f,
        cpu.avx512vl,
        cores,
        scheme(f64_scheme),
        scheme(f32_scheme)
    )
}

pub use json::Json;

mod json {
    //! Minimal recursive-descent JSON parser — just enough for the
    //! TUNE.json schema (objects, arrays, strings without exotic
    //! escapes, numbers, booleans, null). Returns `None` on any
    //! malformed input rather than panicking.

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number (stored as `f64`).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Object field lookup; `None` for non-objects/missing keys.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as a bool, if it is one.
        #[must_use]
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if it is one.
        #[must_use]
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    /// Parses `text` as a single JSON value (trailing whitespace
    /// allowed, trailing garbage rejected).
    #[must_use]
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.i == p.b.len() {
            Some(v)
        } else {
            None
        }
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .b
                .get(self.i)
                .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.i += 1;
            }
        }

        fn eat(&mut self, c: u8) -> bool {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                true
            } else {
                false
            }
        }

        fn lit(&mut self, s: &str, v: Json) -> Option<Json> {
            if self.b[self.i..].starts_with(s.as_bytes()) {
                self.i += s.len();
                Some(v)
            } else {
                None
            }
        }

        fn value(&mut self) -> Option<Json> {
            self.skip_ws();
            match *self.b.get(self.i)? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => self.string().map(Json::Str),
                b't' => self.lit("true", Json::Bool(true)),
                b'f' => self.lit("false", Json::Bool(false)),
                b'n' => self.lit("null", Json::Null),
                b'-' | b'0'..=b'9' => self.number(),
                _ => None,
            }
        }

        fn object(&mut self) -> Option<Json> {
            self.i += 1; // past '{'
            let mut fields = Vec::new();
            self.skip_ws();
            if self.eat(b'}') {
                return Some(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                if !self.eat(b':') {
                    return None;
                }
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                if self.eat(b'}') {
                    return Some(Json::Obj(fields));
                }
                if !self.eat(b',') {
                    return None;
                }
            }
        }

        fn array(&mut self) -> Option<Json> {
            self.i += 1; // past '['
            let mut items = Vec::new();
            self.skip_ws();
            if self.eat(b']') {
                return Some(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                if self.eat(b']') {
                    return Some(Json::Arr(items));
                }
                if !self.eat(b',') {
                    return None;
                }
            }
        }

        fn string(&mut self) -> Option<String> {
            if !self.eat(b'"') {
                return None;
            }
            let mut out = String::new();
            loop {
                match *self.b.get(self.i)? {
                    b'"' => {
                        self.i += 1;
                        return Some(out);
                    }
                    b'\\' => {
                        self.i += 1;
                        let esc = *self.b.get(self.i)?;
                        self.i += 1;
                        out.push(match esc {
                            b'"' => '"',
                            b'\\' => '\\',
                            b'/' => '/',
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            // \uXXXX and rarer escapes aren't needed by
                            // the schema; reject rather than mangle.
                            _ => return None,
                        });
                    }
                    c if c < 0x20 => return None,
                    _ => {
                        // Consume one UTF-8 scalar (input is &str, so
                        // boundaries are valid).
                        let start = self.i;
                        self.i += 1;
                        while self.b.get(self.i).is_some_and(|c| c & 0xC0 == 0x80) {
                            self.i += 1;
                        }
                        out.push_str(std::str::from_utf8(&self.b[start..self.i]).ok()?);
                    }
                }
            }
        }

        fn number(&mut self) -> Option<Json> {
            let start = self.i;
            self.eat(b'-');
            while self.b.get(self.i).is_some_and(|c| {
                c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()?
                .parse::<f64>()
                .ok()
                .filter(|n| n.is_finite())
                .map(Json::Num)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TileScheme::DEFAULT.validate().expect("defaults are valid");
        assert_eq!(TileScheme::default(), TileScheme::DEFAULT);
    }

    #[test]
    fn validation_rejects_degenerate_schemes() {
        let cases = [
            TileScheme {
                mr: 0,
                ..TileScheme::DEFAULT
            },
            TileScheme {
                mr: MR_MAX + 1,
                ..TileScheme::DEFAULT
            },
            TileScheme {
                nr: 0,
                ..TileScheme::DEFAULT
            },
            TileScheme {
                nr: NR_MAX + 1,
                ..TileScheme::DEFAULT
            },
            // MC < MR.
            TileScheme {
                mr: 8,
                mc: 4,
                ..TileScheme::DEFAULT
            },
            // Non-multiple register tile.
            TileScheme {
                mr: 8,
                mc: 60,
                ..TileScheme::DEFAULT
            },
            TileScheme {
                kc: 0,
                ..TileScheme::DEFAULT
            },
            TileScheme {
                kc: 9000,
                ..TileScheme::DEFAULT
            },
            TileScheme {
                ilv_cutoff: 0,
                ..TileScheme::DEFAULT
            },
            TileScheme {
                ilv_cutoff: 65,
                ..TileScheme::DEFAULT
            },
        ];
        for ts in cases {
            assert!(ts.validate().is_err(), "{ts:?} should be rejected");
        }
    }

    #[test]
    fn render_roundtrips_through_loader_schema() {
        let cpu = CpuFeatures {
            avx2: true,
            fma: true,
            avx512f: false,
            avx512vl: false,
        };
        let d = TileScheme {
            mr: 16,
            nr: 4,
            mc: 128,
            kc: 512,
            ilv_cutoff: 32,
        };
        let s = TileScheme::DEFAULT;
        let text = render_tune_json(&cpu, 8, &d, &s);
        let doc = json::parse(&text).expect("render emits valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_u64), Some(1));
        assert_eq!(
            doc.get("cpu")
                .and_then(|c| c.get("avx2"))
                .and_then(Json::as_bool),
            Some(true)
        );
        let parsed = parse_scheme(doc.get("schemes").and_then(|s| s.get("f64")).expect("f64"))
            .expect("valid scheme");
        assert_eq!(parsed, d);
    }

    #[test]
    fn corrupted_tune_json_falls_back_instead_of_panicking() {
        let dir = std::env::temp_dir();
        let write = |name: &str, body: &str| {
            let p = dir.join(name);
            std::fs::write(&p, body).expect("temp write");
            p
        };
        // Truncated JSON.
        let p = write("vbatch_tune_trunc.json", "{\"schema\": 1, \"cpu\": {");
        assert!(load_file(&p).is_err());
        // Valid JSON, missing schemes.
        let p = write(
            "vbatch_tune_partial.json",
            "{\"schema\": 1, \"cpu\": {\"avx2\": true, \"fma\": true, \"avx512f\": false, \"avx512vl\": false}}",
        );
        assert!(load_file(&p).is_err());
        // Wrong schema version.
        let p = write("vbatch_tune_schema.json", "{\"schema\": 2}");
        assert!(load_file(&p).is_err());
        // Not JSON at all.
        let p = write("vbatch_tune_garbage.json", "not json");
        assert!(load_file(&p).is_err());
        // Nonexistent path.
        assert!(load_file(Path::new("/nonexistent/TUNE.json")).is_err());
        let _ = std::fs::remove_file(dir.join("vbatch_tune_trunc.json"));
        let _ = std::fs::remove_file(dir.join("vbatch_tune_partial.json"));
        let _ = std::fs::remove_file(dir.join("vbatch_tune_schema.json"));
        let _ = std::fs::remove_file(dir.join("vbatch_tune_garbage.json"));
    }

    #[test]
    fn feature_mismatch_is_rejected() {
        let here = CpuFeatures::detect();
        // Flip one recorded feature relative to the running host.
        let cpu = CpuFeatures {
            avx2: !here.avx2,
            ..here
        };
        let text = render_tune_json(&cpu, 4, &TileScheme::DEFAULT, &TileScheme::DEFAULT);
        let p = std::env::temp_dir().join("vbatch_tune_mismatch.json");
        std::fs::write(&p, text).expect("temp write");
        let err = load_file(&p).expect_err("mismatched features must be rejected");
        assert!(err.contains("mismatch"), "unexpected error: {err}");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn matching_features_load_tuned_schemes() {
        let here = CpuFeatures::detect();
        let d = TileScheme {
            mr: 8,
            nr: 8,
            mc: 64,
            kc: 128,
            ilv_cutoff: 24,
        };
        let text = render_tune_json(&here, 2, &d, &TileScheme::DEFAULT);
        let p = std::env::temp_dir().join("vbatch_tune_match.json");
        std::fs::write(&p, text).expect("temp write");
        let active = load_file(&p).expect("matching features load");
        assert_eq!(active.f64_scheme, d);
        assert_eq!(active.f32_scheme, TileScheme::DEFAULT);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn active_returns_a_valid_scheme_per_precision() {
        // Whatever the environment resolves to, the result must be a
        // valid scheme and the provenance string non-empty.
        let d = active::<f64>();
        let s = active::<f32>();
        d.validate().expect("active f64 scheme valid");
        s.validate().expect("active f32 scheme valid");
        assert!(!active_info().source.is_empty());
    }

    #[test]
    fn json_parser_handles_edge_cases() {
        assert_eq!(json::parse("null"), Some(Json::Null));
        assert_eq!(
            json::parse("[1, 2]"),
            Some(Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
        assert_eq!(json::parse("\"a\\nb\""), Some(Json::Str("a\nb".to_owned())));
        assert_eq!(
            json::parse("{\"k\": -2.5e1}").and_then(|v| v.get("k").cloned()),
            Some(Json::Num(-25.0))
        );
        assert_eq!(json::parse(""), None);
        assert_eq!(json::parse("{"), None);
        assert_eq!(json::parse("{}extra"), None);
        assert_eq!(json::parse("[1,]"), None);
        assert_eq!(json::parse("{\"k\" 1}"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Null.get("k"), None);
    }
}
