//! Flop-count formulas for reporting performance.
//!
//! The paper reports Gflop/s where "the total number of flops is computed
//! as the summation of the flops required to perform the factorization on
//! each individual matrix" — i.e. *useful* flops, so padded or redundant
//! work lowers the reported rate. These formulas follow the standard
//! LAPACK working-note conventions.

/// Flops for a Cholesky factorization of order `n`: `n³/3 + n²/2 + n/6`.
#[must_use]
pub fn potrf(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0 + n * n / 2.0 + n / 6.0
}

/// Flops for an LU factorization (with partial pivoting) of an `m × n`
/// matrix; for square order `n` this is `2n³/3 − n²/2 − n/6`.
#[must_use]
pub fn getrf(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    let k = m.min(n);
    2.0 * m * n * k - (m + n) * k * k + 2.0 * k * k * k / 3.0
}

/// Flops for a Householder QR factorization of an `m × n` matrix
/// (`2mn² − 2n³/3` for `m ≥ n`, plus lower-order terms).
#[must_use]
pub fn geqrf(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    if m >= n {
        2.0 * m * n * n - 2.0 * n * n * n / 3.0 + m * n + n * n
    } else {
        2.0 * n * m * m - 2.0 * m * m * m / 3.0 + 3.0 * n * m - m * m
    }
}

/// Flops for `gemm` with `C` of size `m × n` and inner dimension `k`.
#[must_use]
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flops for a rank-`k` symmetric update of an order-`n` triangle.
#[must_use]
pub fn syrk(n: usize, k: usize) -> f64 {
    k as f64 * (n as f64) * (n as f64 + 1.0)
}

/// Flops for a triangular solve with an `m × n` right-hand side; the
/// triangular matrix is on `side` of size `m` (`left = true`) or `n`.
#[must_use]
pub fn trsm(left: bool, m: usize, n: usize) -> f64 {
    if left {
        n as f64 * (m as f64) * (m as f64)
    } else {
        m as f64 * (n as f64) * (n as f64)
    }
}

/// Flops for inverting a triangular matrix of order `n` (`n³/3` leading
/// term).
#[must_use]
pub fn trtri(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0 + 2.0 * n / 3.0
}

/// Flops for a two-triangular-solve `potrs` with `nrhs` right-hand sides.
#[must_use]
pub fn potrs(n: usize, nrhs: usize) -> f64 {
    2.0 * (n as f64) * (n as f64) * nrhs as f64
}

/// Sum of per-matrix Cholesky flops across a batch of sizes — the
/// numerator of every Gflop/s figure in the paper.
#[must_use]
pub fn potrf_batch(sizes: &[usize]) -> f64 {
    sizes.iter().map(|&n| potrf(n)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potrf_leading_term() {
        // Within 1% of n^3/3 for large n.
        let n = 1000;
        let lead = (n as f64).powi(3) / 3.0;
        assert!((potrf(n) - lead) / lead < 0.01);
        assert!((potrf(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn getrf_square_leading_term() {
        let n = 1000;
        let lead = 2.0 * (n as f64).powi(3) / 3.0;
        let v = getrf(n, n);
        assert!((v - lead).abs() / lead < 0.01, "{v} vs {lead}");
    }

    #[test]
    fn geqrf_tall_leading_term() {
        let (m, n) = (2000, 1000);
        let lead = 2.0 * m as f64 * (n as f64).powi(2) - 2.0 * (n as f64).powi(3) / 3.0;
        assert!((geqrf(m, n) - lead) / lead < 0.01);
    }

    #[test]
    fn gemm_exact() {
        assert_eq!(gemm(2, 3, 4), 48.0);
    }

    #[test]
    fn batch_sums() {
        assert!((potrf_batch(&[1, 1]) - 2.0).abs() < 1e-12);
        assert!(potrf_batch(&[10, 20]) > potrf(20));
    }

    #[test]
    fn trsm_sides() {
        assert_eq!(trsm(true, 4, 8), 8.0 * 16.0);
        assert_eq!(trsm(false, 8, 4), 8.0 * 16.0);
    }
}
