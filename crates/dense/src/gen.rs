//! Seeded generators for test and benchmark matrices.
//!
//! Batched-computation papers generate their inputs synthetically; the
//! paper's SPD inputs for `xPOTRF` are standard diagonally-dominant
//! random matrices. Everything here is deterministic given the seed so
//! experiments are reproducible run to run.

use crate::matrix::MatMut;
use crate::scalar::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the workspace-standard seeded RNG.
#[must_use]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A vector of `len` uniform values in `[-1, 1]`.
pub fn rand_mat<T: Scalar>(rng: &mut impl Rng, len: usize) -> Vec<T> {
    (0..len)
        .map(|_| T::from_f64(rng.gen_range(-1.0..1.0)))
        .collect()
}

/// Fills `a` with uniform values in `[-1, 1]`.
pub fn fill_rand<T: Scalar>(rng: &mut impl Rng, a: &mut MatMut<'_, T>) {
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            a.set(i, j, T::from_f64(rng.gen_range(-1.0..1.0)));
        }
    }
}

/// Fills the `n × n` view `a` with a random symmetric positive-definite
/// matrix: `A = R + Rᵀ` with the diagonal shifted by `n`, which makes it
/// strictly diagonally dominant and hence SPD with a modest condition
/// number — the standard construction for Cholesky benchmarks.
pub fn fill_spd<T: Scalar>(rng: &mut impl Rng, a: &mut MatMut<'_, T>) {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "SPD matrix must be square");
    for j in 0..n {
        for i in 0..=j {
            let v = T::from_f64(rng.gen_range(-1.0..1.0));
            a.set(i, j, v);
            a.set(j, i, v);
        }
    }
    let shift = T::from_f64(n as f64 + 1.0);
    for i in 0..n {
        let v = a.get(i, i).abs() + shift;
        a.set(i, i, v);
    }
}

/// Packed (ld = n) SPD matrix of order `n`.
pub fn spd_vec<T: Scalar>(rng: &mut impl Rng, n: usize) -> Vec<T> {
    let mut data = vec![T::ZERO; n * n];
    if n > 0 {
        let mut m = MatMut::from_slice(&mut data, n, n, n);
        fill_spd(rng, &mut m);
    }
    data
}

/// Packed general `m × n` matrix with entries in `[-1, 1]`; the diagonal
/// is shifted to keep LU without pivoting stable when `m == n`.
pub fn diag_dominant_vec<T: Scalar>(rng: &mut impl Rng, m: usize, n: usize) -> Vec<T> {
    let mut data: Vec<T> = rand_mat(rng, m * n);
    for i in 0..m.min(n) {
        let v = data[i + i * m].abs() + T::from_f64(n as f64);
        data[i + i * m] = v;
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatRef;

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = seeded_rng(42);
        let mut r2 = seeded_rng(42);
        let a: Vec<f64> = rand_mat(&mut r1, 16);
        let b: Vec<f64> = rand_mat(&mut r2, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn spd_is_symmetric_and_dominant() {
        let mut rng = seeded_rng(3);
        let n = 8;
        let a = spd_vec::<f64>(&mut rng, n);
        let m = MatRef::from_slice(&a, n, n, n);
        for j in 0..n {
            let mut off = 0.0;
            for i in 0..n {
                assert_eq!(m.get(i, j), m.get(j, i));
                if i != j {
                    off += m.get(i, j).abs();
                }
            }
            assert!(m.get(j, j) > off, "row {j} not dominant");
        }
    }

    #[test]
    fn spd_zero_order_is_empty() {
        let mut rng = seeded_rng(3);
        assert!(spd_vec::<f64>(&mut rng, 0).is_empty());
    }

    #[test]
    fn values_in_range() {
        let mut rng = seeded_rng(9);
        let a: Vec<f32> = rand_mat(&mut rng, 100);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
