//! Level-3 BLAS kernels (`gemm`, `syrk`, `trsm`, `trmm`).
//!
//! These are the building blocks the paper's *separated* approach exposes
//! as vbatched kernels, and the primitives that the fused kernel inlines.
//! All four support the full parameter space of their BLAS namesakes for
//! real scalars (no conjugation); dimensions follow the BLAS convention
//! that `op(A)` is `m × k`, `op(B)` is `k × n` and `C` is `m × n`.
//!
//! Loop orders are chosen for column-major access: the innermost loop
//! walks down a column wherever possible (axpy-form `gemm`), matching how
//! the real MAGMA kernels stream panels.

use crate::matrix::{Diag, MatMut, MatRef, Side, Trans, Uplo};
use crate::scalar::Scalar;

/// General matrix-matrix multiply: `C ← α·op(A)·op(B) + β·C`.
///
/// `C` is `m × n`; `op(A)` must be `m × k` and `op(B)` `k × n`.
///
/// # Panics
/// On dimension mismatch.
pub fn gemm<T: Scalar>(
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let k = match transa {
        Trans::NoTrans => a.ncols(),
        Trans::Trans => a.nrows(),
    };
    let (am, ak) = match transa {
        Trans::NoTrans => (a.nrows(), a.ncols()),
        Trans::Trans => (a.ncols(), a.nrows()),
    };
    let (bk, bn) = match transb {
        Trans::NoTrans => (b.nrows(), b.ncols()),
        Trans::Trans => (b.ncols(), b.nrows()),
    };
    assert_eq!(am, m, "gemm: op(A) row mismatch");
    assert_eq!(ak, k, "gemm: op(A)/op(B) inner mismatch");
    assert_eq!(bk, k, "gemm: op(B) row mismatch");
    assert_eq!(bn, n, "gemm: op(B) col mismatch");

    // Scale C by beta first.
    scale(&mut c, beta);
    if alpha == T::ZERO || m == 0 || n == 0 {
        return;
    }

    match (transa, transb) {
        (Trans::NoTrans, Trans::NoTrans) => {
            // C(:,j) += alpha * A(:,l) * B(l,j)  — pure column axpys.
            for j in 0..n {
                for l in 0..k {
                    let blj = alpha * b.get(l, j);
                    if blj == T::ZERO {
                        continue;
                    }
                    for i in 0..m {
                        let v = c.get(i, j) + a.get(i, l) * blj;
                        c.set(i, j, v);
                    }
                }
            }
        }
        (Trans::NoTrans, Trans::Trans) => {
            for j in 0..n {
                for l in 0..k {
                    let blj = alpha * b.get(j, l);
                    if blj == T::ZERO {
                        continue;
                    }
                    for i in 0..m {
                        let v = c.get(i, j) + a.get(i, l) * blj;
                        c.set(i, j, v);
                    }
                }
            }
        }
        (Trans::Trans, Trans::NoTrans) => {
            // C(i,j) += alpha * dot(A(:,i), B(:,j)) — both columns walk down.
            for j in 0..n {
                for i in 0..m {
                    let mut acc = T::ZERO;
                    for l in 0..k {
                        acc += a.get(l, i) * b.get(l, j);
                    }
                    let v = c.get(i, j) + alpha * acc;
                    c.set(i, j, v);
                }
            }
        }
        (Trans::Trans, Trans::Trans) => {
            for j in 0..n {
                for i in 0..m {
                    let mut acc = T::ZERO;
                    for l in 0..k {
                        acc += a.get(l, i) * b.get(j, l);
                    }
                    let v = c.get(i, j) + alpha * acc;
                    c.set(i, j, v);
                }
            }
        }
    }
}

/// Symmetric rank-k update: `C ← α·A·Aᵀ + β·C` (`NoTrans`) or
/// `C ← α·Aᵀ·A + β·C` (`Trans`), updating only the `uplo` triangle of the
/// `n × n` matrix `C`. `A` is `n × k` (`NoTrans`) or `k × n` (`Trans`).
///
/// # Panics
/// On dimension mismatch.
pub fn syrk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "syrk: C must be square");
    let (an, k) = match trans {
        Trans::NoTrans => (a.nrows(), a.ncols()),
        Trans::Trans => (a.ncols(), a.nrows()),
    };
    assert_eq!(an, n, "syrk: A dimension mismatch");

    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Lower => (j, n),
            Uplo::Upper => (0, j + 1),
        };
        for i in lo..hi {
            let mut acc = T::ZERO;
            match trans {
                Trans::NoTrans => {
                    for l in 0..k {
                        acc += a.get(i, l) * a.get(j, l);
                    }
                }
                Trans::Trans => {
                    for l in 0..k {
                        acc += a.get(l, i) * a.get(l, j);
                    }
                }
            }
            let v = beta * c.get(i, j) + alpha * acc;
            c.set(i, j, v);
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `op(A)·X = α·B` (`Side::Left`) or `X·op(A) = α·B` (`Side::Right`),
/// overwriting `B` with `X`. `A` is triangular per `uplo`/`diag`.
///
/// # Panics
/// On dimension mismatch.
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let m = b.nrows();
    let n = b.ncols();
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), na, "trsm: A dimension mismatch");
    assert_eq!(a.ncols(), na, "trsm: A must be square");

    scale(&mut b, alpha);
    if m == 0 || n == 0 {
        return;
    }

    // Effective orientation: Left+Trans behaves like the flipped-uplo
    // NoTrans solve, likewise for Right.
    match side {
        Side::Left => {
            // Solve op(A) X = B column by column (forward/back substitution).
            let forward = matches!(
                (uplo, transa),
                (Uplo::Lower, Trans::NoTrans) | (Uplo::Upper, Trans::Trans)
            );
            for j in 0..n {
                if forward {
                    for i in 0..m {
                        let mut x = b.get(i, j);
                        for l in 0..i {
                            x -= op_get(a, transa, i, l) * b.get(l, j);
                        }
                        if diag == Diag::NonUnit {
                            x /= op_get(a, transa, i, i);
                        }
                        b.set(i, j, x);
                    }
                } else {
                    for i in (0..m).rev() {
                        let mut x = b.get(i, j);
                        for l in (i + 1)..m {
                            x -= op_get(a, transa, i, l) * b.get(l, j);
                        }
                        if diag == Diag::NonUnit {
                            x /= op_get(a, transa, i, i);
                        }
                        b.set(i, j, x);
                    }
                }
            }
        }
        Side::Right => {
            // Solve X op(A) = B row by row over columns of X.
            // X(:,j) = (B(:,j) - Σ_{l != j} X(:,l) op(A)(l,j)) / op(A)(j,j)
            let forward = matches!(
                (uplo, transa),
                (Uplo::Upper, Trans::NoTrans) | (Uplo::Lower, Trans::Trans)
            );
            if forward {
                for j in 0..n {
                    for l in 0..j {
                        let alj = op_get(a, transa, l, j);
                        if alj == T::ZERO {
                            continue;
                        }
                        for i in 0..m {
                            let v = b.get(i, j) - b.get(i, l) * alj;
                            b.set(i, j, v);
                        }
                    }
                    if diag == Diag::NonUnit {
                        let ajj = op_get(a, transa, j, j);
                        for i in 0..m {
                            let v = b.get(i, j) / ajj;
                            b.set(i, j, v);
                        }
                    }
                }
            } else {
                for j in (0..n).rev() {
                    for l in (j + 1)..n {
                        let alj = op_get(a, transa, l, j);
                        if alj == T::ZERO {
                            continue;
                        }
                        for i in 0..m {
                            let v = b.get(i, j) - b.get(i, l) * alj;
                            b.set(i, j, v);
                        }
                    }
                    if diag == Diag::NonUnit {
                        let ajj = op_get(a, transa, j, j);
                        for i in 0..m {
                            let v = b.get(i, j) / ajj;
                            b.set(i, j, v);
                        }
                    }
                }
            }
        }
    }
}

/// Triangular matrix multiply: `B ← α·op(A)·B` (`Side::Left`) or
/// `B ← α·B·op(A)` (`Side::Right`), with triangular `A`.
///
/// Used by the vbatched `trsm` design, which multiplies by inverted
/// diagonal blocks instead of substituting (the paper's `trtri + gemm`
/// scheme).
///
/// # Panics
/// On dimension mismatch.
pub fn trmm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let m = b.nrows();
    let n = b.ncols();
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), na, "trmm: A dimension mismatch");
    assert_eq!(a.ncols(), na, "trmm: A must be square");
    if m == 0 || n == 0 {
        return;
    }

    // Triangularity of op(A): Lower+NoTrans and Upper+Trans act lower.
    let op_lower = matches!(
        (uplo, transa),
        (Uplo::Lower, Trans::NoTrans) | (Uplo::Upper, Trans::Trans)
    );

    match side {
        Side::Left => {
            // B(i,j) = alpha * Σ_l op(A)(i,l) B(l,j) over the triangle.
            for j in 0..n {
                if op_lower {
                    // Compute from the bottom up so untouched inputs remain.
                    for i in (0..m).rev() {
                        let mut acc = if diag == Diag::Unit {
                            b.get(i, j)
                        } else {
                            op_get(a, transa, i, i) * b.get(i, j)
                        };
                        for l in 0..i {
                            acc += op_get(a, transa, i, l) * b.get(l, j);
                        }
                        b.set(i, j, alpha * acc);
                    }
                } else {
                    for i in 0..m {
                        let mut acc = if diag == Diag::Unit {
                            b.get(i, j)
                        } else {
                            op_get(a, transa, i, i) * b.get(i, j)
                        };
                        for l in (i + 1)..m {
                            acc += op_get(a, transa, i, l) * b.get(l, j);
                        }
                        b.set(i, j, alpha * acc);
                    }
                }
            }
        }
        Side::Right => {
            // B(i,j) = alpha * Σ_l B(i,l) op(A)(l,j).
            if op_lower {
                // op(A)(l,j) nonzero for l >= j: process columns left→right.
                for j in 0..n {
                    for i in 0..m {
                        let mut acc = if diag == Diag::Unit {
                            b.get(i, j)
                        } else {
                            b.get(i, j) * op_get(a, transa, j, j)
                        };
                        for l in (j + 1)..n {
                            acc += b.get(i, l) * op_get(a, transa, l, j);
                        }
                        b.set(i, j, alpha * acc);
                    }
                }
            } else {
                for j in (0..n).rev() {
                    for i in 0..m {
                        let mut acc = if diag == Diag::Unit {
                            b.get(i, j)
                        } else {
                            b.get(i, j) * op_get(a, transa, j, j)
                        };
                        for l in 0..j {
                            acc += b.get(i, l) * op_get(a, transa, l, j);
                        }
                        b.set(i, j, alpha * acc);
                    }
                }
            }
        }
    }
}

#[inline]
fn op_get<T: Scalar>(a: MatRef<'_, T>, trans: Trans, i: usize, j: usize) -> T {
    match trans {
        Trans::NoTrans => a.get(i, j),
        Trans::Trans => a.get(j, i),
    }
}

fn scale<T: Scalar>(c: &mut MatMut<'_, T>, beta: T) {
    if beta == T::ONE {
        return;
    }
    for j in 0..c.ncols() {
        for i in 0..c.nrows() {
            let v = if beta == T::ZERO {
                T::ZERO
            } else {
                beta * c.get(i, j)
            };
            c.set(i, j, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rand_mat, seeded_rng};
    use crate::naive;
    use crate::verify::max_abs_diff_slices;

    fn mat<'a>(d: &'a [f64], m: usize, n: usize) -> MatRef<'a, f64> {
        MatRef::from_slice(d, m, n, m)
    }

    #[test]
    fn gemm_all_trans_match_naive() {
        let mut rng = seeded_rng(7);
        for &(m, n, k) in &[(3usize, 4usize, 5usize), (1, 1, 1), (7, 2, 9), (4, 4, 4)] {
            for &ta in &[Trans::NoTrans, Trans::Trans] {
                for &tb in &[Trans::NoTrans, Trans::Trans] {
                    let (am, an) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
                    let (bm, bn) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
                    let a = rand_mat::<f64>(&mut rng, am * an);
                    let b = rand_mat::<f64>(&mut rng, bm * bn);
                    let c0 = rand_mat::<f64>(&mut rng, m * n);

                    let mut c = c0.clone();
                    gemm(
                        ta,
                        tb,
                        0.5,
                        mat(&a, am, an),
                        mat(&b, bm, bn),
                        -2.0,
                        MatMut::from_slice(&mut c, m, n, m),
                    );
                    let want = naive::gemm_ref(ta, tb, 0.5, &a, am, an, &b, bm, bn, -2.0, &c0, m, n);
                    assert!(
                        max_abs_diff_slices(&c, &want) < 1e-12,
                        "gemm mismatch ta={ta:?} tb={tb:?} m={m} n={n} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_beta_zero_ignores_nan() {
        // beta = 0 must overwrite even NaN garbage in C (BLAS semantics).
        let a = [1.0f64];
        let b = [2.0f64];
        let mut c = [f64::NAN];
        gemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            mat(&a, 1, 1),
            mat(&b, 1, 1),
            0.0,
            MatMut::from_slice(&mut c, 1, 1, 1),
        );
        assert_eq!(c[0], 2.0);
    }

    #[test]
    fn syrk_matches_gemm() {
        let mut rng = seeded_rng(11);
        for &(n, k) in &[(4usize, 3usize), (6, 6), (1, 5), (5, 1)] {
            for &trans in &[Trans::NoTrans, Trans::Trans] {
                for &uplo in &[Uplo::Lower, Uplo::Upper] {
                    let (am, an) = if trans == Trans::NoTrans { (n, k) } else { (k, n) };
                    let a = rand_mat::<f64>(&mut rng, am * an);
                    let c0 = rand_mat::<f64>(&mut rng, n * n);

                    let mut c = c0.clone();
                    syrk(
                        uplo,
                        trans,
                        1.5,
                        mat(&a, am, an),
                        0.5,
                        MatMut::from_slice(&mut c, n, n, n),
                    );

                    // Full product via gemm, then compare only the triangle.
                    let mut full = c0.clone();
                    let (ta, tb) = if trans == Trans::NoTrans {
                        (Trans::NoTrans, Trans::Trans)
                    } else {
                        (Trans::Trans, Trans::NoTrans)
                    };
                    gemm(
                        ta,
                        tb,
                        1.5,
                        mat(&a, am, an),
                        mat(&a, am, an),
                        0.5,
                        MatMut::from_slice(&mut full, n, n, n),
                    );
                    for j in 0..n {
                        for i in 0..n {
                            let in_tri = match uplo {
                                Uplo::Lower => i >= j,
                                Uplo::Upper => i <= j,
                            };
                            let got = c[i + j * n];
                            let want = if in_tri { full[i + j * n] } else { c0[i + j * n] };
                            assert!(
                                (got - want).abs() < 1e-12,
                                "syrk {uplo:?} {trans:?} n={n} k={k} at ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_roundtrip_all_variants() {
        let mut rng = seeded_rng(13);
        for &(m, n) in &[(4usize, 3usize), (5, 5), (1, 4), (6, 1)] {
            for &side in &[Side::Left, Side::Right] {
                for &uplo in &[Uplo::Lower, Uplo::Upper] {
                    for &trans in &[Trans::NoTrans, Trans::Trans] {
                        for &diag in &[Diag::NonUnit, Diag::Unit] {
                            let na = if side == Side::Left { m } else { n };
                            // Well-conditioned triangular matrix.
                            let mut a = rand_mat::<f64>(&mut rng, na * na);
                            for i in 0..na {
                                a[i + i * na] = 2.0 + a[i + i * na].abs();
                            }
                            let x0 = rand_mat::<f64>(&mut rng, m * n);

                            // b = op(A) * x0 (or x0 * op(A)); trsm must recover x0.
                            let mut b = x0.clone();
                            trmm(
                                side,
                                uplo,
                                trans,
                                diag,
                                1.0,
                                mat(&a, na, na),
                                MatMut::from_slice(&mut b, m, n, m),
                            );
                            trsm(
                                side,
                                uplo,
                                trans,
                                diag,
                                1.0,
                                mat(&a, na, na),
                                MatMut::from_slice(&mut b, m, n, m),
                            );
                            assert!(
                                max_abs_diff_slices(&b, &x0) < 1e-10,
                                "trsm roundtrip {side:?} {uplo:?} {trans:?} {diag:?} m={m} n={n}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_alpha_scales_rhs() {
        let a = [2.0f64]; // 1x1 lower
        let mut b = [8.0f64];
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            0.5,
            mat(&a, 1, 1),
            MatMut::from_slice(&mut b, 1, 1, 1),
        );
        assert_eq!(b[0], 2.0); // (0.5*8)/2
    }

    #[test]
    fn trmm_ignores_opposite_triangle() {
        // Garbage in the strictly-upper part must not affect Lower trmm.
        let mut a = vec![0.0f64; 9];
        a[0] = 1.0;
        a[4] = 2.0;
        a[8] = 3.0;
        a[1] = 4.0; // L(1,0)
        a[3] = f64::NAN; // U(0,1) garbage
        a[6] = f64::NAN;
        a[7] = f64::NAN;
        let mut b = vec![1.0f64; 3];
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            mat(&a, 3, 3),
            MatMut::from_slice(&mut b, 3, 1, 3),
        );
        assert_eq!(b, vec![1.0, 6.0, 3.0]);
    }
}
