//! Level-3 BLAS kernels (`gemm`, `syrk`, `trsm`, `trmm`) — a two-tier
//! engine.
//!
//! These are the building blocks the paper's *separated* approach exposes
//! as vbatched kernels, and the primitives that the fused kernel inlines.
//! All four support the full parameter space of their BLAS namesakes for
//! real scalars (no conjugation); dimensions follow the BLAS convention
//! that `op(A)` is `m × k`, `op(B)` is `k × n` and `C` is `m × n`.
//!
//! # The two tiers
//!
//! **Small tier** — inner loops run over contiguous column slices
//! ([`MatRef::col_as_slice`] / [`MatMut::col_as_mut_slice`]) in axpy or
//! dot form, so the compiler auto-vectorizes them instead of issuing
//! per-element pointer arithmetic. This is the profile that dominates the
//! paper's variable-size batched workloads, where most operands are tiny.
//!
//! **Blocked tier** — for larger operands, `gemm` switches to BLIS-style
//! cache tiling: `MC × KC` panels of `op(A)` and `KC × NR` micro-panels
//! of `op(B)` are packed into reusable thread-local scratch
//! ([`Scalar::with_scratch`], no steady-state allocation) and consumed by
//! an `MR × NR` register-tiled microkernel. `syrk` routes its
//! off-diagonal rank-k updates and `trsm` its block updates through the
//! same engine, so every consumer — blocked Cholesky/LU, the vbatched
//! kernels, the CPU baselines — inherits the fast path.
//!
//! [`uses_blocked`] exposes the dispatch predicate and the [`tier`]
//! module exposes both tiers directly so tests and benches can pin a
//! path regardless of operand size.
//!
//! # Runtime tile schemes
//!
//! The tiling parameters are no longer compile-time-only: the blocked
//! tier reads its `(mr, nr, mc, kc)` from [`crate::tune::active`] — the
//! per-precision [`crate::tune::TileScheme`] resolved from a committed
//! `TUNE.json` (or the defaults below when none applies). Register-tile
//! shapes with a hand-written microkernel — 8×4 on AVX2+FMA, plus 16×4
//! f64/f32, 8×8 f64 and 16×8 f32 on AVX-512F — dispatch to it at
//! runtime; any other valid shape runs on the portable loop.

use crate::matrix::{Diag, MatMut, MatRef, Side, Trans, Uplo};
use crate::scalar::Scalar;
use crate::tune::{self, TileScheme, MR_MAX, NR_MAX};

/// Default rows per register tile of the blocked microkernel
/// (equals [`TileScheme::DEFAULT`]`.mr`).
pub const MR: usize = 8;
/// Default columns per register tile of the blocked microkernel
/// (equals [`TileScheme::DEFAULT`]`.nr`).
pub const NR: usize = 4;
/// Default row-panel height cached per packed `op(A)` block
/// (multiple of `MR`; equals [`TileScheme::DEFAULT`]`.mc`).
pub const MC: usize = 64;
/// Default depth of one packed panel pair (the shared `k` extent per
/// sweep; equals [`TileScheme::DEFAULT`]`.kc`).
pub const KC: usize = 256;

/// Minimum inner extent `k` for the blocked tier: packing `op(A)` and
/// `op(B)` is paid once per element but amortized over `k` fused
/// multiply-adds, so a thin inner dimension can't recoup it.
pub const BLOCKED_MIN_K: usize = 12;
/// Minimum column count `n` for the blocked tier: with fewer columns
/// than two `NR`-wide micro-panels the register tile runs mostly padded.
pub const BLOCKED_MIN_N: usize = 8;

/// Dispatch predicate: `true` when `gemm` with these dimensions takes
/// the packed/blocked tier rather than the slice tier.
///
/// Host-measured crossover (see `tier_scan` history in the PR): the
/// packed path wins for every shape with a non-thin inner extent and at
/// least two micro-panels of columns — volume is irrelevant, `m` is
/// irrelevant (even `m = 3` amortizes via the zero-padded tile).
#[inline]
#[must_use]
pub fn uses_blocked(m: usize, n: usize, k: usize) -> bool {
    let _ = m;
    k >= BLOCKED_MIN_K && n >= BLOCKED_MIN_N
}

/// General matrix-matrix multiply: `C ← α·op(A)·op(B) + β·C`.
///
/// `C` is `m × n`; `op(A)` must be `m × k` and `op(B)` `k × n`.
/// Dispatches between the slice tier and the packed/blocked tier on
/// [`uses_blocked`].
///
/// # Panics
/// On dimension mismatch.
pub fn gemm<T: Scalar>(
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, n, k) = check_gemm_dims(transa, transb, a, b, &c);
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        scale(&mut c, beta);
        return;
    }
    if uses_blocked(m, n, k) {
        // β folds into the first panel sweep's writeback — no separate
        // pass over C.
        gemm_blocked_acc(
            &tune::active::<T>(),
            transa,
            transb,
            alpha,
            a,
            b,
            beta,
            &mut c,
        );
    } else {
        scale(&mut c, beta);
        gemm_small_acc(transa, transb, alpha, a, b, &mut c);
    }
}

fn check_gemm_dims<T: Scalar>(
    transa: Trans,
    transb: Trans,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &MatMut<'_, T>,
) -> (usize, usize, usize) {
    let m = c.nrows();
    let n = c.ncols();
    let (am, ak) = match transa {
        Trans::NoTrans => (a.nrows(), a.ncols()),
        Trans::Trans => (a.ncols(), a.nrows()),
    };
    let (bk, bn) = match transb {
        Trans::NoTrans => (b.nrows(), b.ncols()),
        Trans::Trans => (b.ncols(), b.nrows()),
    };
    assert_eq!(am, m, "gemm: op(A) row mismatch");
    assert_eq!(bk, ak, "gemm: op(A)/op(B) inner mismatch");
    assert_eq!(bn, n, "gemm: op(B) col mismatch");
    (m, n, ak)
}

// ---------------------------------------------------------------------
// Slice helpers — the vectorization primitives of the small tier.
// ---------------------------------------------------------------------

/// `y ← y + a·x` over equal-length slices.
#[inline]
pub(crate) fn axpy<T: Scalar>(y: &mut [T], x: &[T], a: T) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = a.mul_add(*xi, *yi);
    }
}

/// Dot product with eight partial accumulators, so the float reduction
/// can vectorize without re-association concerns on the final sum.
#[inline]
pub(crate) fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    const LANES: usize = 8;
    let n = x.len().min(y.len());
    let split = n - n % LANES;
    let mut acc = [T::ZERO; LANES];
    for (xa, ya) in x[..split]
        .chunks_exact(LANES)
        .zip(y[..split].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] = xa[l].mul_add(ya[l], acc[l]);
        }
    }
    let mut s = T::ZERO;
    for v in acc {
        s += v;
    }
    for (xi, yi) in x[split..n].iter().zip(&y[split..n]) {
        s += *xi * *yi;
    }
    s
}

// ---------------------------------------------------------------------
// Small tier: column-slice axpy/dot loops.
// ---------------------------------------------------------------------

/// `C ← C + α·op(A)·op(B)` (β already applied) via slice loops.
fn gemm_small_acc<T: Scalar>(
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
) {
    let m = c.nrows();
    let n = c.ncols();
    let k = match transa {
        Trans::NoTrans => a.ncols(),
        Trans::Trans => a.nrows(),
    };
    match (transa, transb) {
        (Trans::NoTrans, _) => {
            // C(:,j) += α·B(l,j) · A(:,l) — pure column axpys.
            for j in 0..n {
                let cj = c.col_as_mut_slice(j);
                for l in 0..k {
                    let w = alpha
                        * match transb {
                            Trans::NoTrans => b.get(l, j),
                            Trans::Trans => b.get(j, l),
                        };
                    if w != T::ZERO {
                        axpy(cj, a.col_as_slice(l), w);
                    }
                }
            }
        }
        (Trans::Trans, Trans::NoTrans) => {
            // C(i,j) += α·dot(A(:,i), B(:,j)) — both columns contiguous.
            for j in 0..n {
                let bj = b.col_as_slice(j);
                let cj = c.col_as_mut_slice(j);
                for (i, ci) in cj.iter_mut().enumerate().take(m) {
                    *ci += alpha * dot(a.col_as_slice(i), bj);
                }
            }
        }
        (Trans::Trans, Trans::Trans) => {
            // Gather row j of B once per output column so the inner dot
            // runs over two contiguous slices.
            T::with_scratch(k, |brow| {
                for j in 0..n {
                    for (l, slot) in brow.iter_mut().enumerate() {
                        *slot = b.get(j, l);
                    }
                    let cj = c.col_as_mut_slice(j);
                    for (i, ci) in cj.iter_mut().enumerate().take(m) {
                        *ci += alpha * dot(a.col_as_slice(i), brow);
                    }
                }
            });
        }
    }
}

// ---------------------------------------------------------------------
// Blocked tier: packed panels + register-tiled microkernel.
// ---------------------------------------------------------------------

/// `C ← C + α·op(A)·op(B)` (β already applied) via mc×kc×nr tiling
/// under the given [`TileScheme`] (callers pass a validated scheme —
/// [`tune::active`] or one vetted by [`TileScheme::validate`]).
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_acc<T: Scalar>(
    ts: &TileScheme,
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) {
    let (tmr, tnr, mc_blk, kc_blk) = (ts.mr, ts.nr, ts.mc, ts.kc);
    let m = c.nrows();
    let n = c.ncols();
    let k = match transa {
        Trans::NoTrans => a.ncols(),
        Trans::Trans => a.nrows(),
    };
    // A kc larger than the operand's inner extent clamps — the scheme
    // is a ceiling, not a demand.
    let kc_max = kc_blk.min(k);
    let pa_len = mc_blk * kc_max;
    let pb_len = n.div_ceil(tnr) * tnr * kc_max;
    T::with_scratch(pa_len + pb_len, |scratch| {
        let (pa_buf, pb_buf) = scratch.split_at_mut(pa_len);
        for pc in (0..k).step_by(kc_blk) {
            let kc = kc_blk.min(k - pc);
            // Every C tile is written exactly once per panel sweep, so
            // the first sweep applies β and later sweeps accumulate.
            let beta_eff = if pc == 0 { beta } else { T::ONE };
            pack_b(transb, b, pc, kc, n, tnr, pb_buf);
            for ic in (0..m).step_by(mc_blk) {
                let mc = mc_blk.min(m - ic);
                pack_a(transa, a, ic, mc, pc, kc, tmr, pa_buf);
                for jr0 in (0..n).step_by(tnr) {
                    let nr = tnr.min(n - jr0);
                    let pb_panel = &pb_buf[(jr0 / tnr) * (tnr * kc)..][..tnr * kc];
                    for ir0 in (0..mc).step_by(tmr) {
                        let mr = tmr.min(mc - ir0);
                        let pa_panel = &pa_buf[(ir0 / tmr) * (tmr * kc)..][..tmr * kc];
                        microkernel(
                            alpha,
                            pa_panel,
                            pb_panel,
                            beta_eff,
                            c,
                            ic + ir0,
                            jr0,
                            mr,
                            nr,
                            tmr,
                            tnr,
                        );
                    }
                }
            }
        }
    });
}

/// Packs `op(A)[ic..ic+mc, pc..pc+kc]` into `tmr`-row micro-panels:
/// element `(ir0+r, pc+p)` lands at `(ir0/tmr)·tmr·kc + p·tmr + r`, with
/// rows past `mc` zero-padded so the microkernel needs no row masking.
#[allow(clippy::too_many_arguments)]
fn pack_a<T: Scalar>(
    transa: Trans,
    a: MatRef<'_, T>,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    tmr: usize,
    buf: &mut [T],
) {
    for ir0 in (0..mc).step_by(tmr) {
        let mr = tmr.min(mc - ir0);
        let panel = &mut buf[(ir0 / tmr) * (tmr * kc)..][..tmr * kc];
        match transa {
            Trans::NoTrans => {
                for p in 0..kc {
                    let col = &a.col_as_slice(pc + p)[ic + ir0..];
                    let dst = &mut panel[p * tmr..p * tmr + tmr];
                    dst[..mr].copy_from_slice(&col[..mr]);
                    dst[mr..].fill(T::ZERO);
                }
            }
            Trans::Trans => {
                // op(A)(i,p) = A(p,i): read each needed column of A once.
                for r in 0..mr {
                    let col = &a.col_as_slice(ic + ir0 + r)[pc..];
                    for p in 0..kc {
                        panel[p * tmr + r] = col[p];
                    }
                }
                for r in mr..tmr {
                    for p in 0..kc {
                        panel[p * tmr + r] = T::ZERO;
                    }
                }
            }
        }
    }
}

/// Packs `op(B)[pc..pc+kc, 0..n]` into `tnr`-column micro-panels:
/// element `(pc+p, jr0+j)` lands at `(jr0/tnr)·tnr·kc + p·tnr + j`, with
/// columns past `n` zero-padded.
fn pack_b<T: Scalar>(
    transb: Trans,
    b: MatRef<'_, T>,
    pc: usize,
    kc: usize,
    n: usize,
    tnr: usize,
    buf: &mut [T],
) {
    for jr0 in (0..n).step_by(tnr) {
        let nr = tnr.min(n - jr0);
        let panel = &mut buf[(jr0 / tnr) * (tnr * kc)..][..tnr * kc];
        match transb {
            Trans::NoTrans => {
                for j in 0..nr {
                    let col = &b.col_as_slice(jr0 + j)[pc..];
                    for p in 0..kc {
                        panel[p * tnr + j] = col[p];
                    }
                }
                for j in nr..tnr {
                    for p in 0..kc {
                        panel[p * tnr + j] = T::ZERO;
                    }
                }
            }
            Trans::Trans => {
                // op(B)(p,j) = B(j,p): column pc+p of B is contiguous.
                for p in 0..kc {
                    let col = &b.col_as_slice(pc + p)[jr0..];
                    let dst = &mut panel[p * tnr..p * tnr + tnr];
                    dst[..nr].copy_from_slice(&col[..nr]);
                    dst[nr..].fill(T::ZERO);
                }
            }
        }
    }
}

/// Register-tiled `tmr × tnr` microkernel: accumulates one packed
/// `op(A)`-panel × `op(B)`-panel product over the shared `kc` extent in
/// a `tmr × tnr` corner of an `MR_MAX × NR_MAX` accumulator block, then
/// writes `C ← α·acc + β·C` on the live `mr × nr` corner of `C`
/// (β = 0 overwrites without reading, BLAS-style).
#[inline]
#[allow(clippy::too_many_arguments)]
fn microkernel<T: Scalar>(
    alpha: T,
    pa: &[T],
    pb: &[T],
    beta: T,
    c: &mut MatMut<'_, T>,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    tmr: usize,
    tnr: usize,
) {
    let mut acc = [[T::ZERO; MR_MAX]; NR_MAX];
    accumulate_tile(pa, pb, &mut acc, tmr, tnr);
    for (jr, accj) in acc.iter().enumerate().take(nr) {
        let col = &mut c.col_as_mut_slice(j0 + jr)[i0..i0 + mr];
        if beta == T::ONE {
            for (r, ci) in col.iter_mut().enumerate() {
                *ci = alpha.mul_add(accj[r], *ci);
            }
        } else if beta == T::ZERO {
            for (r, ci) in col.iter_mut().enumerate() {
                *ci = alpha * accj[r];
            }
        } else {
            for (r, ci) in col.iter_mut().enumerate() {
                *ci = alpha.mul_add(accj[r], beta * *ci);
            }
        }
    }
}

/// `acc[jr][r] += Σ_p pa[p·tmr + r] · pb[p·tnr + jr]` over packed panels
/// (`pa.len() == tmr·kc`, `pb.len() == tnr·kc`).
///
/// On x86-64 hosts with AVX2+FMA (runtime-detected), `T` ∈
/// {`f32`, `f64`} and a kernel-backed tile shape, this routes to a
/// hand-written fused-multiply-add kernel (AVX-512F shapes included
/// when the host has them); everywhere else it falls back to the
/// portable loop. The portable loop is monomorphized per known tile
/// shape and deliberately uses `mul` + `add` rather than `mul_add`:
/// LLVM SLP-vectorizes these register-tile shapes, while the scalar fma
/// intrinsic blocks that and serializes the tile.
#[inline]
fn accumulate_tile<T: Scalar>(
    pa: &[T],
    pb: &[T],
    acc: &mut [[T; MR_MAX]; NR_MAX],
    tmr: usize,
    tnr: usize,
) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if x86::accumulate_tile(pa, pb, acc, tmr, tnr) {
        return;
    }
    match (tmr, tnr) {
        (8, 4) => portable_tile::<T, 8, 4>(pa, pb, acc),
        (16, 4) => portable_tile::<T, 16, 4>(pa, pb, acc),
        (8, 8) => portable_tile::<T, 8, 8>(pa, pb, acc),
        (16, 8) => portable_tile::<T, 16, 8>(pa, pb, acc),
        _ => {
            for (av, bv) in pa.chunks_exact(tmr).zip(pb.chunks_exact(tnr)) {
                for (jr, accj) in acc.iter_mut().enumerate().take(tnr) {
                    let b = bv[jr];
                    for (r, slot) in accj.iter_mut().enumerate().take(tmr) {
                        *slot += av[r] * b;
                    }
                }
            }
        }
    }
}

/// Portable tile accumulation monomorphized on the tile shape, so the
/// inner loops have compile-time trip counts and SLP-vectorize.
#[inline]
fn portable_tile<T: Scalar, const TMR: usize, const TNR: usize>(
    pa: &[T],
    pb: &[T],
    acc: &mut [[T; MR_MAX]; NR_MAX],
) {
    for (av, bv) in pa.chunks_exact(TMR).zip(pb.chunks_exact(TNR)) {
        for (jr, accj) in acc.iter_mut().enumerate().take(TNR) {
            let b = bv[jr];
            for (r, slot) in accj.iter_mut().enumerate().take(TMR) {
                *slot += av[r] * b;
            }
        }
    }
}

/// Hand-written AVX2+FMA and AVX-512F microkernel accumulators. The
/// generic tile loop tops out without fused multiply-adds (Rust never
/// contracts `a*b + c`, and the scalar `mul_add` intrinsic defeats SLP
/// vectorization), so the two primitive precisions get explicit
/// `_mm256_fmadd` / `_mm512_fmadd` kernels, selected per call by
/// `(TypeId, tile shape)` after a runtime CPU-feature check. Tile
/// shapes without a matching kernel (or hosts without the feature the
/// kernel needs) return `false` and run the portable loop — that is the
/// zero-regression path for AVX2-only machines handed an AVX-512 tuned
/// scheme.
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod x86 {
    use super::{Scalar, MR_MAX, NR_MAX};
    use core::any::TypeId;
    use std::arch::x86_64::*;

    /// Accumulator block shared by every kernel: each of the `NR_MAX`
    /// rows is `MR_MAX` = 16 scalars wide, so an 8-wide f64 kernel
    /// touches elements `0..8` and a 16-wide one `0..16` — always in
    /// bounds.
    type Acc<F> = [[F; MR_MAX]; NR_MAX];

    /// Returns `true` when the tile was handled by an FMA kernel,
    /// `false` when the caller must run the portable loop.
    #[inline]
    pub(super) fn accumulate_tile<T: Scalar>(
        pa: &[T],
        pb: &[T],
        acc: &mut [[T; MR_MAX]; NR_MAX],
        tmr: usize,
        tnr: usize,
    ) -> bool {
        // `is_x86_feature_detected!` caches its answer in an atomic, so
        // the per-call cost is a couple of relaxed loads.
        if !(is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")) {
            return false;
        }
        let wide = is_x86_feature_detected!("avx512f");
        debug_assert_eq!(pa.len() / tmr, pb.len() / tnr);
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // Safety: `T` is exactly `f64` (TypeId match above), so the
            // pointer casts only re-state the slice types; the features
            // each kernel enables were just detected.
            unsafe {
                let pa = core::slice::from_raw_parts(pa.as_ptr().cast::<f64>(), pa.len());
                let pb = core::slice::from_raw_parts(pb.as_ptr().cast::<f64>(), pb.len());
                let acc = &mut *(acc as *mut [[T; MR_MAX]; NR_MAX]).cast::<Acc<f64>>();
                match (tmr, tnr) {
                    (8, 4) => accumulate_f64(pa, pb, acc),
                    (16, 4) if wide => accumulate_f64_16x4(pa, pb, acc),
                    (8, 8) if wide => accumulate_f64_8x8(pa, pb, acc),
                    _ => return false,
                }
            }
            true
        } else if TypeId::of::<T>() == TypeId::of::<f32>() {
            // Safety: as above with `T` == `f32`.
            unsafe {
                let pa = core::slice::from_raw_parts(pa.as_ptr().cast::<f32>(), pa.len());
                let pb = core::slice::from_raw_parts(pb.as_ptr().cast::<f32>(), pb.len());
                let acc = &mut *(acc as *mut [[T; MR_MAX]; NR_MAX]).cast::<Acc<f32>>();
                match (tmr, tnr) {
                    (8, 4) => accumulate_f32(pa, pb, acc),
                    (16, 4) if wide => accumulate_f32_16x4(pa, pb, acc),
                    (16, 8) if wide => accumulate_f32_16x8(pa, pb, acc),
                    _ => return false,
                }
            }
            true
        } else {
            false
        }
    }

    /// 8×4 f64 tile: two 4-lane registers per C column, eight
    /// independent fma chains — enough to cover fma latency at two
    /// issues per cycle.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn accumulate_f64(pa: &[f64], pb: &[f64], acc: &mut Acc<f64>) {
        // SAFETY: fn contract — `pa` holds kc packed 8-rows and `pb` kc
        // packed 4-rows (debug-asserted by the dispatcher), so offsets
        // `p·8 + 0..8` and `p·4 + jr` stay in bounds; `acc` rows are
        // MR_MAX = 16 wide, covering both 4-wide halves.
        unsafe {
            const TMR: usize = 8;
            const TNR: usize = 4;
            let kc = pa.len() / TMR;
            let (pa, pb) = (pa.as_ptr(), pb.as_ptr());
            let mut c: [[__m256d; 2]; TNR] = [[_mm256_setzero_pd(); 2]; TNR];
            for p in 0..kc {
                let a0 = _mm256_loadu_pd(pa.add(p * TMR));
                let a1 = _mm256_loadu_pd(pa.add(p * TMR + 4));
                for (jr, cj) in c.iter_mut().enumerate() {
                    let b = _mm256_set1_pd(*pb.add(p * TNR + jr));
                    cj[0] = _mm256_fmadd_pd(a0, b, cj[0]);
                    cj[1] = _mm256_fmadd_pd(a1, b, cj[1]);
                }
            }
            for (accj, cj) in acc.iter_mut().zip(&c) {
                let lo = _mm256_add_pd(_mm256_loadu_pd(accj.as_ptr()), cj[0]);
                let hi = _mm256_add_pd(_mm256_loadu_pd(accj.as_ptr().add(4)), cj[1]);
                _mm256_storeu_pd(accj.as_mut_ptr(), lo);
                _mm256_storeu_pd(accj.as_mut_ptr().add(4), hi);
            }
        }
    }

    /// 8×4 f32 tile: one 8-lane register per C column. Four columns give
    /// only four fma chains, so the k loop runs two steps at a time into
    /// separate partial sums (eight chains) that merge at the end.
    ///
    /// # Safety
    /// Caller must have verified AVX2+FMA support.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn accumulate_f32(pa: &[f32], pb: &[f32], acc: &mut Acc<f32>) {
        // SAFETY: fn contract — as `accumulate_f64`: packed panel offsets
        // `p·8 + 0..8` / `p·4 + jr` are in bounds for kc packed rows,
        // and each `acc` row is MR_MAX = 16 wide (≥ one 8-lane register).
        unsafe {
            const TMR: usize = 8;
            const TNR: usize = 4;
            let kc = pa.len() / TMR;
            let (pa, pb) = (pa.as_ptr(), pb.as_ptr());
            let mut c0: [__m256; TNR] = [_mm256_setzero_ps(); TNR];
            let mut c1: [__m256; TNR] = [_mm256_setzero_ps(); TNR];
            let mut p = 0;
            while p + 2 <= kc {
                let a0 = _mm256_loadu_ps(pa.add(p * TMR));
                let a1 = _mm256_loadu_ps(pa.add((p + 1) * TMR));
                for jr in 0..TNR {
                    let b0 = _mm256_set1_ps(*pb.add(p * TNR + jr));
                    let b1 = _mm256_set1_ps(*pb.add((p + 1) * TNR + jr));
                    c0[jr] = _mm256_fmadd_ps(a0, b0, c0[jr]);
                    c1[jr] = _mm256_fmadd_ps(a1, b1, c1[jr]);
                }
                p += 2;
            }
            if p < kc {
                let a0 = _mm256_loadu_ps(pa.add(p * TMR));
                for (jr, c0j) in c0.iter_mut().enumerate() {
                    let b0 = _mm256_set1_ps(*pb.add(p * TNR + jr));
                    *c0j = _mm256_fmadd_ps(a0, b0, *c0j);
                }
            }
            for (jr, accj) in acc.iter_mut().enumerate().take(TNR) {
                let sum = _mm256_add_ps(c0[jr], c1[jr]);
                let prev = _mm256_loadu_ps(accj.as_ptr());
                _mm256_storeu_ps(accj.as_mut_ptr(), _mm256_add_ps(prev, sum));
            }
        }
    }

    /// 16×4 f64 tile: two 8-lane ZMM registers per C column, eight
    /// independent fma chains over a register footprint of 8 ZMM
    /// accumulators + 2 A loads + 1 broadcast — comfortably inside the
    /// 32-register AVX-512 file.
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    unsafe fn accumulate_f64_16x4(pa: &[f64], pb: &[f64], acc: &mut Acc<f64>) {
        // SAFETY: fn contract — `pa` holds kc packed 16-rows and `pb` kc
        // packed 4-rows (debug-asserted by the dispatcher), so offsets
        // `p·16 + 0..16` and `p·4 + jr` stay in bounds; `acc` rows are
        // MR_MAX = 16 wide, covering both 8-wide halves.
        unsafe {
            const TMR: usize = 16;
            const TNR: usize = 4;
            let kc = pa.len() / TMR;
            let (pa, pb) = (pa.as_ptr(), pb.as_ptr());
            let mut c: [[__m512d; 2]; TNR] = [[_mm512_setzero_pd(); 2]; TNR];
            for p in 0..kc {
                let a0 = _mm512_loadu_pd(pa.add(p * TMR));
                let a1 = _mm512_loadu_pd(pa.add(p * TMR + 8));
                for (jr, cj) in c.iter_mut().enumerate() {
                    let b = _mm512_set1_pd(*pb.add(p * TNR + jr));
                    cj[0] = _mm512_fmadd_pd(a0, b, cj[0]);
                    cj[1] = _mm512_fmadd_pd(a1, b, cj[1]);
                }
            }
            for (accj, cj) in acc.iter_mut().zip(&c) {
                let lo = _mm512_add_pd(_mm512_loadu_pd(accj.as_ptr()), cj[0]);
                let hi = _mm512_add_pd(_mm512_loadu_pd(accj.as_ptr().add(8)), cj[1]);
                _mm512_storeu_pd(accj.as_mut_ptr(), lo);
                _mm512_storeu_pd(accj.as_mut_ptr().add(8), hi);
            }
        }
    }

    /// 8×8 f64 tile: one 8-lane ZMM register per C column, eight
    /// independent fma chains. Narrower A panel than 16×4 — wins when
    /// `m` tails would leave half a 16-row panel padded.
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    unsafe fn accumulate_f64_8x8(pa: &[f64], pb: &[f64], acc: &mut Acc<f64>) {
        // SAFETY: fn contract — `pa` holds kc packed 8-rows and `pb` kc
        // packed 8-rows (debug-asserted by the dispatcher), so offsets
        // `p·8 + 0..8` and `p·8 + jr` stay in bounds; `acc` rows are
        // MR_MAX = 16 wide (≥ one 8-lane register).
        unsafe {
            const TMR: usize = 8;
            const TNR: usize = 8;
            let kc = pa.len() / TMR;
            let (pa, pb) = (pa.as_ptr(), pb.as_ptr());
            let mut c: [__m512d; TNR] = [_mm512_setzero_pd(); TNR];
            for p in 0..kc {
                let a0 = _mm512_loadu_pd(pa.add(p * TMR));
                for (jr, cj) in c.iter_mut().enumerate() {
                    let b = _mm512_set1_pd(*pb.add(p * TNR + jr));
                    *cj = _mm512_fmadd_pd(a0, b, *cj);
                }
            }
            for (accj, cj) in acc.iter_mut().zip(&c) {
                let sum = _mm512_add_pd(_mm512_loadu_pd(accj.as_ptr()), *cj);
                _mm512_storeu_pd(accj.as_mut_ptr(), sum);
            }
        }
    }

    /// 16×8 f32 tile: one 16-lane ZMM register per C column, eight
    /// independent fma chains.
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    unsafe fn accumulate_f32_16x8(pa: &[f32], pb: &[f32], acc: &mut Acc<f32>) {
        // SAFETY: fn contract — `pa` holds kc packed 16-rows and `pb` kc
        // packed 8-rows (debug-asserted by the dispatcher), so offsets
        // `p·16 + 0..16` and `p·8 + jr` stay in bounds; `acc` rows are
        // MR_MAX = 16 wide (exactly one 16-lane register).
        unsafe {
            const TMR: usize = 16;
            const TNR: usize = 8;
            let kc = pa.len() / TMR;
            let (pa, pb) = (pa.as_ptr(), pb.as_ptr());
            let mut c: [__m512; TNR] = [_mm512_setzero_ps(); TNR];
            for p in 0..kc {
                let a0 = _mm512_loadu_ps(pa.add(p * TMR));
                for (jr, cj) in c.iter_mut().enumerate() {
                    let b = _mm512_set1_ps(*pb.add(p * TNR + jr));
                    *cj = _mm512_fmadd_ps(a0, b, *cj);
                }
            }
            for (accj, cj) in acc.iter_mut().zip(&c) {
                let sum = _mm512_add_ps(_mm512_loadu_ps(accj.as_ptr()), *cj);
                _mm512_storeu_ps(accj.as_mut_ptr(), sum);
            }
        }
    }

    /// 16×4 f32 tile: one 16-lane ZMM register per C column. Four
    /// columns give only four fma chains, so the k loop runs two steps
    /// at a time into separate partial sums (eight chains) that merge
    /// at the end — same schedule as the AVX2 8×4 f32 kernel.
    ///
    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    unsafe fn accumulate_f32_16x4(pa: &[f32], pb: &[f32], acc: &mut Acc<f32>) {
        // SAFETY: fn contract — `pa` holds kc packed 16-rows and `pb` kc
        // packed 4-rows (debug-asserted by the dispatcher), so offsets
        // `p·16 + 0..16` and `p·4 + jr` stay in bounds; `acc` rows are
        // MR_MAX = 16 wide (exactly one 16-lane register).
        unsafe {
            const TMR: usize = 16;
            const TNR: usize = 4;
            let kc = pa.len() / TMR;
            let (pa, pb) = (pa.as_ptr(), pb.as_ptr());
            let mut c0: [__m512; TNR] = [_mm512_setzero_ps(); TNR];
            let mut c1: [__m512; TNR] = [_mm512_setzero_ps(); TNR];
            let mut p = 0;
            while p + 2 <= kc {
                let a0 = _mm512_loadu_ps(pa.add(p * TMR));
                let a1 = _mm512_loadu_ps(pa.add((p + 1) * TMR));
                for jr in 0..TNR {
                    let b0 = _mm512_set1_ps(*pb.add(p * TNR + jr));
                    let b1 = _mm512_set1_ps(*pb.add((p + 1) * TNR + jr));
                    c0[jr] = _mm512_fmadd_ps(a0, b0, c0[jr]);
                    c1[jr] = _mm512_fmadd_ps(a1, b1, c1[jr]);
                }
                p += 2;
            }
            if p < kc {
                let a0 = _mm512_loadu_ps(pa.add(p * TMR));
                for (jr, c0j) in c0.iter_mut().enumerate() {
                    let b0 = _mm512_set1_ps(*pb.add(p * TNR + jr));
                    *c0j = _mm512_fmadd_ps(a0, b0, *c0j);
                }
            }
            for (jr, accj) in acc.iter_mut().enumerate().take(TNR) {
                let sum = _mm512_add_ps(c0[jr], c1[jr]);
                let prev = _mm512_loadu_ps(accj.as_ptr());
                _mm512_storeu_ps(accj.as_mut_ptr(), _mm512_add_ps(prev, sum));
            }
        }
    }
}

// ---------------------------------------------------------------------
// syrk
// ---------------------------------------------------------------------

/// Column-block width for the blocked `syrk` sweep (diagonal blocks run
/// on the slice tier; everything below/right of them is `gemm`).
const SYRK_NB: usize = 48;

/// Symmetric rank-k update: `C ← α·A·Aᵀ + β·C` (`NoTrans`) or
/// `C ← α·Aᵀ·A + β·C` (`Trans`), updating only the `uplo` triangle of the
/// `n × n` matrix `C`. `A` is `n × k` (`NoTrans`) or `k × n` (`Trans`).
///
/// Large updates are decomposed into slice-tier diagonal blocks plus
/// off-diagonal rectangles routed through the [`gemm`] engine, so the
/// rank-k updates inside blocked Cholesky hit the packed tier.
///
/// # Panics
/// On dimension mismatch.
pub fn syrk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "syrk: C must be square");
    let (an, k) = match trans {
        Trans::NoTrans => (a.nrows(), a.ncols()),
        Trans::Trans => (a.ncols(), a.nrows()),
    };
    assert_eq!(an, n, "syrk: A dimension mismatch");
    if n == 0 {
        return;
    }
    if n <= SYRK_NB || k == 0 {
        syrk_small(uplo, trans, alpha, a, beta, c);
        return;
    }
    for j0 in (0..n).step_by(SYRK_NB) {
        let jb = SYRK_NB.min(n - j0);
        let a_diag = match trans {
            Trans::NoTrans => a.sub(j0, 0, jb, k),
            Trans::Trans => a.sub(0, j0, k, jb),
        };
        syrk_small(uplo, trans, alpha, a_diag, beta, c.rb().sub(j0, j0, jb, jb));
        // Off-diagonal rectangle of this block column, via gemm.
        let (ci, cj, cm, cn) = match uplo {
            Uplo::Lower => (j0 + jb, j0, n - (j0 + jb), jb),
            Uplo::Upper => (0, j0, j0, jb),
        };
        if cm == 0 {
            continue;
        }
        let csub = c.rb().sub(ci, cj, cm, cn);
        match trans {
            Trans::NoTrans => gemm(
                Trans::NoTrans,
                Trans::Trans,
                alpha,
                a.sub(ci, 0, cm, k),
                a.sub(cj, 0, cn, k),
                beta,
                csub,
            ),
            Trans::Trans => gemm(
                Trans::Trans,
                Trans::NoTrans,
                alpha,
                a.sub(0, ci, k, cm),
                a.sub(0, cj, k, cn),
                beta,
                csub,
            ),
        }
    }
}

/// Slice-tier `syrk` on one (diagonal) block.
fn syrk_small<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let n = c.nrows();
    let k = match trans {
        Trans::NoTrans => a.ncols(),
        Trans::Trans => a.nrows(),
    };
    let bounds = |j: usize| match uplo {
        Uplo::Lower => (j, n),
        Uplo::Upper => (0, j + 1),
    };
    // β over the triangle only (β = 0 overwrites, BLAS semantics).
    for j in 0..n {
        let (lo, hi) = bounds(j);
        let col = &mut c.col_as_mut_slice(j)[lo..hi];
        if beta == T::ZERO {
            col.fill(T::ZERO);
        } else if beta != T::ONE {
            for v in col {
                *v *= beta;
            }
        }
    }
    if alpha == T::ZERO || k == 0 {
        return;
    }
    match trans {
        Trans::NoTrans => {
            // C(lo..hi, j) += α·A(j,l) · A(lo..hi, l): column axpys.
            for l in 0..k {
                let al = a.col_as_slice(l);
                for j in 0..n {
                    let w = alpha * al[j];
                    if w != T::ZERO {
                        let (lo, hi) = bounds(j);
                        axpy(&mut c.col_as_mut_slice(j)[lo..hi], &al[lo..hi], w);
                    }
                }
            }
        }
        Trans::Trans => {
            // C(i,j) += α·dot(A(:,i), A(:,j)): contiguous column dots.
            for j in 0..n {
                let aj = a.col_as_slice(j);
                let (lo, hi) = bounds(j);
                let cj = &mut c.col_as_mut_slice(j)[lo..hi];
                for (ci, i) in cj.iter_mut().zip(lo..hi) {
                    *ci += alpha * dot(a.col_as_slice(i), aj);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// trsm
// ---------------------------------------------------------------------

/// Diagonal-block size below which `trsm` substitutes directly on the
/// slice tier instead of recursing.
const TRSM_NB: usize = 32;

/// Triangular solve with multiple right-hand sides:
/// `op(A)·X = α·B` (`Side::Left`) or `X·op(A) = α·B` (`Side::Right`),
/// overwriting `B` with `X`. `A` is triangular per `uplo`/`diag`.
///
/// Solves recursively: the triangle splits in half, the off-diagonal
/// coupling becomes a [`gemm`] update (packed tier for large operands),
/// and sub-[`TRSM_NB`] diagonal blocks substitute on the slice tier.
///
/// # Panics
/// On dimension mismatch.
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let m = b.nrows();
    let n = b.ncols();
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), na, "trsm: A dimension mismatch");
    assert_eq!(a.ncols(), na, "trsm: A must be square");

    scale(&mut b, alpha);
    if m == 0 || n == 0 {
        return;
    }
    trsm_rec(side, uplo, transa, diag, a, b);
}

/// Recursive solve of `op(A)·X = B` / `X·op(A) = B` in place (α already
/// applied by the caller).
fn trsm_rec<T: Scalar>(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    a: MatRef<'_, T>,
    b: MatMut<'_, T>,
) {
    let na = a.nrows();
    if na <= TRSM_NB {
        trsm_small(side, uplo, transa, diag, a, b);
        return;
    }
    let n1 = na / 2;
    let a11 = a.sub(0, 0, n1, n1);
    let a22 = a.sub(n1, n1, na - n1, na - n1);
    // Only one off-diagonal block is populated per `uplo`.
    let a21 = || a.sub(n1, 0, na - n1, n1);
    let a12 = || a.sub(0, n1, n1, na - n1);
    let rec = |blk: MatRef<'_, T>, rhs: MatMut<'_, T>| {
        trsm_rec(side, uplo, transa, diag, blk, rhs);
    };
    match side {
        Side::Left => {
            let (mut b1, mut b2) = b.split_at_row(n1);
            match (uplo, transa) {
                (Uplo::Lower, Trans::NoTrans) => {
                    rec(a11, b1.rb());
                    gemm(
                        transa,
                        Trans::NoTrans,
                        -T::ONE,
                        a21(),
                        b1.as_ref(),
                        T::ONE,
                        b2.rb(),
                    );
                    rec(a22, b2);
                }
                (Uplo::Lower, Trans::Trans) => {
                    rec(a22, b2.rb());
                    gemm(
                        transa,
                        Trans::NoTrans,
                        -T::ONE,
                        a21(),
                        b2.as_ref(),
                        T::ONE,
                        b1.rb(),
                    );
                    rec(a11, b1);
                }
                (Uplo::Upper, Trans::NoTrans) => {
                    rec(a22, b2.rb());
                    gemm(
                        transa,
                        Trans::NoTrans,
                        -T::ONE,
                        a12(),
                        b2.as_ref(),
                        T::ONE,
                        b1.rb(),
                    );
                    rec(a11, b1);
                }
                (Uplo::Upper, Trans::Trans) => {
                    rec(a11, b1.rb());
                    gemm(
                        transa,
                        Trans::NoTrans,
                        -T::ONE,
                        a12(),
                        b1.as_ref(),
                        T::ONE,
                        b2.rb(),
                    );
                    rec(a22, b2);
                }
            }
        }
        Side::Right => {
            let (mut b1, mut b2) = b.split_at_col(n1);
            match (uplo, transa) {
                (Uplo::Lower, Trans::NoTrans) => {
                    rec(a22, b2.rb());
                    gemm(
                        Trans::NoTrans,
                        transa,
                        -T::ONE,
                        b2.as_ref(),
                        a21(),
                        T::ONE,
                        b1.rb(),
                    );
                    rec(a11, b1);
                }
                (Uplo::Lower, Trans::Trans) => {
                    rec(a11, b1.rb());
                    gemm(
                        Trans::NoTrans,
                        transa,
                        -T::ONE,
                        b1.as_ref(),
                        a21(),
                        T::ONE,
                        b2.rb(),
                    );
                    rec(a22, b2);
                }
                (Uplo::Upper, Trans::NoTrans) => {
                    rec(a11, b1.rb());
                    gemm(
                        Trans::NoTrans,
                        transa,
                        -T::ONE,
                        b1.as_ref(),
                        a12(),
                        T::ONE,
                        b2.rb(),
                    );
                    rec(a22, b2);
                }
                (Uplo::Upper, Trans::Trans) => {
                    rec(a22, b2.rb());
                    gemm(
                        Trans::NoTrans,
                        transa,
                        -T::ONE,
                        b2.as_ref(),
                        a12(),
                        T::ONE,
                        b1.rb(),
                    );
                    rec(a11, b1);
                }
            }
        }
    }
}

/// Slice-tier substitution on one diagonal block (α already applied).
fn trsm_small<T: Scalar>(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let m = b.nrows();
    let n = b.ncols();
    match side {
        Side::Left => match (uplo, transa) {
            (Uplo::Lower, Trans::NoTrans) => {
                // Right-looking forward substitution: each solved x_i is
                // broadcast down the remaining rows via a column axpy.
                for j in 0..n {
                    let bj = b.col_as_mut_slice(j);
                    for i in 0..m {
                        let (head, tail) = bj.split_at_mut(i + 1);
                        let mut x = head[i];
                        if diag == Diag::NonUnit {
                            x /= a.get(i, i);
                        }
                        head[i] = x;
                        axpy(tail, &a.col_as_slice(i)[i + 1..], -x);
                    }
                }
            }
            (Uplo::Upper, Trans::NoTrans) => {
                // Right-looking backward substitution.
                for j in 0..n {
                    let bj = b.col_as_mut_slice(j);
                    for i in (0..m).rev() {
                        let (head, tail) = bj.split_at_mut(i);
                        let mut x = tail[0];
                        if diag == Diag::NonUnit {
                            x /= a.get(i, i);
                        }
                        tail[0] = x;
                        axpy(head, &a.col_as_slice(i)[..i], -x);
                    }
                }
            }
            (Uplo::Upper, Trans::Trans) => {
                // Forward substitution in dot form: column i of A holds
                // exactly the coefficients op(A)(i, 0..i).
                for j in 0..n {
                    let bj = b.col_as_mut_slice(j);
                    for i in 0..m {
                        let mut x = bj[i] - dot(&a.col_as_slice(i)[..i], &bj[..i]);
                        if diag == Diag::NonUnit {
                            x /= a.get(i, i);
                        }
                        bj[i] = x;
                    }
                }
            }
            (Uplo::Lower, Trans::Trans) => {
                // Backward substitution in dot form.
                for j in 0..n {
                    let bj = b.col_as_mut_slice(j);
                    for i in (0..m).rev() {
                        let mut x = bj[i] - dot(&a.col_as_slice(i)[i + 1..], &bj[i + 1..]);
                        if diag == Diag::NonUnit {
                            x /= a.get(i, i);
                        }
                        bj[i] = x;
                    }
                }
            }
        },
        Side::Right => {
            // X(:,j) = (B(:,j) − Σ_l X(:,l)·op(A)(l,j)) / op(A)(j,j):
            // column axpys between distinct columns of B.
            let forward = matches!(
                (uplo, transa),
                (Uplo::Upper, Trans::NoTrans) | (Uplo::Lower, Trans::Trans)
            );
            let mut solve_col = |j: usize, prior: &mut dyn Iterator<Item = usize>| {
                for l in prior {
                    let alj = op_get(a, transa, l, j);
                    if alj != T::ZERO {
                        let (dst, src) = b.col_pair_mut(j, l);
                        axpy(dst, src, -alj);
                    }
                }
                if diag == Diag::NonUnit {
                    let ajj = op_get(a, transa, j, j);
                    for v in b.col_as_mut_slice(j) {
                        *v /= ajj;
                    }
                }
            };
            if forward {
                for j in 0..n {
                    solve_col(j, &mut (0..j));
                }
            } else {
                for j in (0..n).rev() {
                    solve_col(j, &mut ((j + 1)..n));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// trmm
// ---------------------------------------------------------------------

/// Triangular matrix multiply: `B ← α·op(A)·B` (`Side::Left`) or
/// `B ← α·B·op(A)` (`Side::Right`), with triangular `A`.
///
/// Used by the vbatched `trsm` design, which multiplies by inverted
/// diagonal blocks instead of substituting (the paper's `trtri + gemm`
/// scheme). Runs in place on the slice tier: `NoTrans` variants as
/// column axpys over `A`'s columns, `Trans` variants as contiguous
/// column dots, right-side variants as column axpys between columns of
/// `B` — ordered so every source element is read before the sweep
/// overwrites it.
///
/// # Panics
/// On dimension mismatch.
pub fn trmm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let m = b.nrows();
    let n = b.ncols();
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), na, "trmm: A dimension mismatch");
    assert_eq!(a.ncols(), na, "trmm: A must be square");
    if m == 0 || n == 0 {
        return;
    }

    // Triangularity of op(A): Lower+NoTrans and Upper+Trans act lower.
    let op_lower = matches!(
        (uplo, transa),
        (Uplo::Lower, Trans::NoTrans) | (Uplo::Upper, Trans::Trans)
    );

    match side {
        Side::Left => {
            for j in 0..n {
                let bj = b.col_as_mut_slice(j);
                match (transa, op_lower) {
                    (Trans::NoTrans, true) => {
                        // y = L·b via column axpys, descending so each
                        // b[l] is consumed before row l is overwritten.
                        for l in (0..m).rev() {
                            let xl = bj[l];
                            bj[l] = if diag == Diag::Unit {
                                xl
                            } else {
                                a.get(l, l) * xl
                            };
                            if xl != T::ZERO {
                                let (_, tail) = bj.split_at_mut(l + 1);
                                axpy(tail, &a.col_as_slice(l)[l + 1..], xl);
                            }
                        }
                    }
                    (Trans::NoTrans, false) => {
                        // y = U·b, ascending.
                        for l in 0..m {
                            let xl = bj[l];
                            if xl != T::ZERO {
                                let (head, _) = bj.split_at_mut(l);
                                axpy(head, &a.col_as_slice(l)[..l], xl);
                            }
                            bj[l] = if diag == Diag::Unit {
                                xl
                            } else {
                                a.get(l, l) * xl
                            };
                        }
                    }
                    (Trans::Trans, true) => {
                        // y_i = dot(A(0..i, i), b(0..i)) + A(i,i)·b_i,
                        // descending keeps the dot inputs unmodified.
                        for i in (0..m).rev() {
                            let ai = a.col_as_slice(i);
                            let d = if diag == Diag::Unit {
                                bj[i]
                            } else {
                                ai[i] * bj[i]
                            };
                            bj[i] = d + dot(&ai[..i], &bj[..i]);
                        }
                    }
                    (Trans::Trans, false) => {
                        for i in 0..m {
                            let ai = a.col_as_slice(i);
                            let d = if diag == Diag::Unit {
                                bj[i]
                            } else {
                                ai[i] * bj[i]
                            };
                            bj[i] = d + dot(&ai[i + 1..], &bj[i + 1..]);
                        }
                    }
                }
                if alpha != T::ONE {
                    for v in b.col_as_mut_slice(j) {
                        *v *= alpha;
                    }
                }
            }
        }
        Side::Right => {
            // B(:,j) ← α·Σ_l B(:,l)·op(A)(l,j): the sweep direction
            // guarantees source columns are still original when read.
            let mut mul_col = |j: usize, others: &mut dyn Iterator<Item = usize>| {
                let d = if diag == Diag::Unit {
                    T::ONE
                } else {
                    op_get(a, transa, j, j)
                };
                let w = alpha * d;
                for v in b.col_as_mut_slice(j) {
                    *v *= w;
                }
                for l in others {
                    let w = alpha * op_get(a, transa, l, j);
                    if w != T::ZERO {
                        let (dst, src) = b.col_pair_mut(j, l);
                        axpy(dst, src, w);
                    }
                }
            };
            if op_lower {
                for j in 0..n {
                    mul_col(j, &mut ((j + 1)..n));
                }
            } else {
                for j in (0..n).rev() {
                    mul_col(j, &mut (0..j));
                }
            }
        }
    }
}

#[inline]
fn op_get<T: Scalar>(a: MatRef<'_, T>, trans: Trans, i: usize, j: usize) -> T {
    match trans {
        Trans::NoTrans => a.get(i, j),
        Trans::Trans => a.get(j, i),
    }
}

fn scale<T: Scalar>(c: &mut MatMut<'_, T>, beta: T) {
    if beta == T::ONE {
        return;
    }
    for j in 0..c.ncols() {
        let col = c.col_as_mut_slice(j);
        if beta == T::ZERO {
            col.fill(T::ZERO);
        } else {
            for v in col {
                *v *= beta;
            }
        }
    }
}

/// Direct access to the two `gemm` tiers, bypassing [`uses_blocked`]
/// dispatch. Tests pin each tier against the oracle on identical inputs;
/// benches report both so the dispatch threshold stays honest.
pub mod tier {
    use super::*;

    /// Slice-tier `gemm` (`C ← α·op(A)·op(B) + β·C`), any size.
    pub fn gemm_small<T: Scalar>(
        transa: Trans,
        transb: Trans,
        alpha: T,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        beta: T,
        mut c: MatMut<'_, T>,
    ) {
        let (m, n, k) = check_gemm_dims(transa, transb, a, b, &c);
        scale(&mut c, beta);
        if alpha != T::ZERO && m > 0 && n > 0 && k > 0 {
            gemm_small_acc(transa, transb, alpha, a, b, &mut c);
        }
    }

    /// Packed/blocked-tier `gemm` (`C ← α·op(A)·op(B) + β·C`), any
    /// size, under the active [`TileScheme`].
    pub fn gemm_blocked<T: Scalar>(
        transa: Trans,
        transb: Trans,
        alpha: T,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        beta: T,
        c: MatMut<'_, T>,
    ) {
        gemm_blocked_scheme(&tune::active::<T>(), transa, transb, alpha, a, b, beta, c);
    }

    /// Packed/blocked-tier `gemm` under an explicit [`TileScheme`],
    /// bypassing the process-wide tuning state — the entry point the
    /// autotuner and the scheme-sweep tests use to race candidate
    /// schemes inside one process.
    ///
    /// # Panics
    /// When `ts` fails [`TileScheme::validate`] (the packing layout
    /// depends on its invariants) or on dimension mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_blocked_scheme<T: Scalar>(
        ts: &TileScheme,
        transa: Trans,
        transb: Trans,
        alpha: T,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        beta: T,
        mut c: MatMut<'_, T>,
    ) {
        if let Err(why) = ts.validate() {
            panic!("gemm_blocked_scheme: invalid tile scheme: {why}");
        }
        let (m, n, k) = check_gemm_dims(transa, transb, a, b, &c);
        if alpha != T::ZERO && m > 0 && n > 0 && k > 0 {
            gemm_blocked_acc(ts, transa, transb, alpha, a, b, beta, &mut c);
        } else {
            scale(&mut c, beta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rand_mat, seeded_rng};
    use crate::naive;
    use crate::verify::max_abs_diff_slices;

    fn mat<'a>(d: &'a [f64], m: usize, n: usize) -> MatRef<'a, f64> {
        MatRef::from_slice(d, m, n, m)
    }

    #[test]
    fn gemm_all_trans_match_naive() {
        let mut rng = seeded_rng(7);
        for &(m, n, k) in &[(3usize, 4usize, 5usize), (1, 1, 1), (7, 2, 9), (4, 4, 4)] {
            for &ta in &[Trans::NoTrans, Trans::Trans] {
                for &tb in &[Trans::NoTrans, Trans::Trans] {
                    let (am, an) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
                    let (bm, bn) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
                    let a = rand_mat::<f64>(&mut rng, am * an);
                    let b = rand_mat::<f64>(&mut rng, bm * bn);
                    let c0 = rand_mat::<f64>(&mut rng, m * n);

                    let mut c = c0.clone();
                    gemm(
                        ta,
                        tb,
                        0.5,
                        mat(&a, am, an),
                        mat(&b, bm, bn),
                        -2.0,
                        MatMut::from_slice(&mut c, m, n, m),
                    );
                    let want =
                        naive::gemm_ref(ta, tb, 0.5, &a, am, an, &b, bm, bn, -2.0, &c0, m, n);
                    assert!(
                        max_abs_diff_slices(&c, &want) < 1e-12,
                        "gemm mismatch ta={ta:?} tb={tb:?} m={m} n={n} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_tiers_match_each_other() {
        // Same inputs through both tiers: sizes straddling MR/NR/MC
        // boundaries, all transpose combinations.
        let mut rng = seeded_rng(23);
        for &(m, n, k) in &[
            (MR - 1, NR - 1, 3usize),
            (MR, NR, KC.min(17)),
            (MR + 1, NR + 1, 5),
            (MC - 1, 9, 11),
            (MC + 1, NR * 3 + 2, 13),
            (65, 67, 66),
        ] {
            for &ta in &[Trans::NoTrans, Trans::Trans] {
                for &tb in &[Trans::NoTrans, Trans::Trans] {
                    let (am, an) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
                    let (bm, bn) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
                    let a = rand_mat::<f64>(&mut rng, am * an);
                    let b = rand_mat::<f64>(&mut rng, bm * bn);
                    let c0 = rand_mat::<f64>(&mut rng, m * n);

                    let mut cs = c0.clone();
                    tier::gemm_small(
                        ta,
                        tb,
                        1.25,
                        mat(&a, am, an),
                        mat(&b, bm, bn),
                        0.5,
                        MatMut::from_slice(&mut cs, m, n, m),
                    );
                    let mut cb = c0.clone();
                    tier::gemm_blocked(
                        ta,
                        tb,
                        1.25,
                        mat(&a, am, an),
                        mat(&b, bm, bn),
                        0.5,
                        MatMut::from_slice(&mut cb, m, n, m),
                    );
                    assert!(
                        max_abs_diff_slices(&cs, &cb) < 1e-10,
                        "tier mismatch ta={ta:?} tb={tb:?} m={m} n={n} k={k}"
                    );
                }
            }
        }
    }

    /// Every register-tile shape with a hand-written kernel (plus one
    /// portable-only shape) against the naive oracle, across mc/kc
    /// variants including kc > k (clamping) and non-default mc.
    #[test]
    fn gemm_blocked_scheme_sweep_matches_naive() {
        fn run<T: Scalar>(tol: f64) {
            let mut rng = seeded_rng(31);
            let shapes = [(8usize, 4usize), (16, 4), (8, 8), (16, 8), (4, 2)];
            let blocks = [(64usize, 256usize), (32, 64), (48, 4096)];
            for &(mr, nr) in &shapes {
                for &(mc, kc) in &blocks {
                    let ts = TileScheme {
                        mr,
                        nr,
                        mc: mc.div_ceil(mr) * mr,
                        kc,
                        ilv_cutoff: 32,
                    };
                    ts.validate().expect("sweep schemes are valid");
                    let (m, n, k) = (65usize, 39usize, 70usize);
                    let a: Vec<T> = rand_mat::<f64>(&mut rng, m * k)
                        .iter()
                        .map(|&v| T::from_f64(v))
                        .collect();
                    let b: Vec<T> = rand_mat::<f64>(&mut rng, k * n)
                        .iter()
                        .map(|&v| T::from_f64(v))
                        .collect();
                    let c0: Vec<T> = rand_mat::<f64>(&mut rng, m * n)
                        .iter()
                        .map(|&v| T::from_f64(v))
                        .collect();
                    let mut c = c0.clone();
                    tier::gemm_blocked_scheme(
                        &ts,
                        Trans::NoTrans,
                        Trans::NoTrans,
                        T::from_f64(1.5),
                        MatRef::from_slice(&a, m, k, m),
                        MatRef::from_slice(&b, k, n, k),
                        T::from_f64(-0.5),
                        MatMut::from_slice(&mut c, m, n, m),
                    );
                    let want = naive::gemm_ref(
                        Trans::NoTrans,
                        Trans::NoTrans,
                        T::from_f64(1.5),
                        &a,
                        m,
                        k,
                        &b,
                        k,
                        n,
                        T::from_f64(-0.5),
                        &c0,
                        m,
                        n,
                    );
                    let err = c
                        .iter()
                        .zip(&want)
                        .map(|(x, y)| (x.to_f64() - y.to_f64()).abs())
                        .fold(0.0f64, f64::max);
                    assert!(
                        err < tol,
                        "scheme {ts:?} {} err {err}",
                        std::any::type_name::<T>()
                    );
                }
            }
        }
        run::<f64>(1e-10);
        run::<f32>(1e-3);
    }

    #[test]
    #[should_panic(expected = "invalid tile scheme")]
    fn gemm_blocked_scheme_rejects_invalid() {
        let a = [1.0f64; 4];
        let mut c = [0.0f64; 4];
        let ts = TileScheme {
            mr: 8,
            nr: 4,
            mc: 4, // mc < mr
            kc: 256,
            ilv_cutoff: 32,
        };
        tier::gemm_blocked_scheme(
            &ts,
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            mat(&a, 2, 2),
            mat(&a, 2, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
    }

    #[test]
    fn dispatch_threshold_sanity() {
        assert!(!uses_blocked(4, 4, 4));
        assert!(uses_blocked(64, 64, 64));
        assert!(uses_blocked(256, 256, 32));
        // Short m still pays off through the zero-padded register tile.
        assert!(uses_blocked(3, 64, 64));
        // Thin inner dimension stays on the slice tier (axpy form).
        assert!(!uses_blocked(512, 512, 4));
        // Too few columns to fill NR-wide micro-panels.
        assert!(!uses_blocked(64, 3, 64));
    }

    #[test]
    fn gemm_beta_zero_ignores_nan() {
        // beta = 0 must overwrite even NaN garbage in C (BLAS semantics).
        let a = [1.0f64];
        let b = [2.0f64];
        let mut c = [f64::NAN];
        gemm(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            mat(&a, 1, 1),
            mat(&b, 1, 1),
            0.0,
            MatMut::from_slice(&mut c, 1, 1, 1),
        );
        assert_eq!(c[0], 2.0);
    }

    #[test]
    fn syrk_matches_gemm() {
        let mut rng = seeded_rng(11);
        for &(n, k) in &[(4usize, 3usize), (6, 6), (1, 5), (5, 1), (SYRK_NB + 5, 7)] {
            for &trans in &[Trans::NoTrans, Trans::Trans] {
                for &uplo in &[Uplo::Lower, Uplo::Upper] {
                    let (am, an) = if trans == Trans::NoTrans {
                        (n, k)
                    } else {
                        (k, n)
                    };
                    let a = rand_mat::<f64>(&mut rng, am * an);
                    let c0 = rand_mat::<f64>(&mut rng, n * n);

                    let mut c = c0.clone();
                    syrk(
                        uplo,
                        trans,
                        1.5,
                        mat(&a, am, an),
                        0.5,
                        MatMut::from_slice(&mut c, n, n, n),
                    );

                    // Full product via gemm, then compare only the triangle.
                    let mut full = c0.clone();
                    let (ta, tb) = if trans == Trans::NoTrans {
                        (Trans::NoTrans, Trans::Trans)
                    } else {
                        (Trans::Trans, Trans::NoTrans)
                    };
                    gemm(
                        ta,
                        tb,
                        1.5,
                        mat(&a, am, an),
                        mat(&a, am, an),
                        0.5,
                        MatMut::from_slice(&mut full, n, n, n),
                    );
                    for j in 0..n {
                        for i in 0..n {
                            let in_tri = match uplo {
                                Uplo::Lower => i >= j,
                                Uplo::Upper => i <= j,
                            };
                            let got = c[i + j * n];
                            let want = if in_tri {
                                full[i + j * n]
                            } else {
                                c0[i + j * n]
                            };
                            assert!(
                                (got - want).abs() < 1e-12,
                                "syrk {uplo:?} {trans:?} n={n} k={k} at ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_roundtrip_all_variants() {
        let mut rng = seeded_rng(13);
        for &(m, n) in &[
            (4usize, 3usize),
            (5, 5),
            (1, 4),
            (6, 1),
            (TRSM_NB + 3, 5),
            (5, TRSM_NB + 3),
        ] {
            for &side in &[Side::Left, Side::Right] {
                for &uplo in &[Uplo::Lower, Uplo::Upper] {
                    for &trans in &[Trans::NoTrans, Trans::Trans] {
                        for &diag in &[Diag::NonUnit, Diag::Unit] {
                            let na = if side == Side::Left { m } else { n };
                            // Well-conditioned triangular matrix.
                            let mut a = rand_mat::<f64>(&mut rng, na * na);
                            for i in 0..na {
                                a[i + i * na] = 2.0 + a[i + i * na].abs();
                            }
                            let x0 = rand_mat::<f64>(&mut rng, m * n);

                            // b = op(A) * x0 (or x0 * op(A)); trsm must recover x0.
                            let mut b = x0.clone();
                            trmm(
                                side,
                                uplo,
                                trans,
                                diag,
                                1.0,
                                mat(&a, na, na),
                                MatMut::from_slice(&mut b, m, n, m),
                            );
                            trsm(
                                side,
                                uplo,
                                trans,
                                diag,
                                1.0,
                                mat(&a, na, na),
                                MatMut::from_slice(&mut b, m, n, m),
                            );
                            assert!(
                                max_abs_diff_slices(&b, &x0) < 1e-10,
                                "trsm roundtrip {side:?} {uplo:?} {trans:?} {diag:?} m={m} n={n}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_alpha_scales_rhs() {
        let a = [2.0f64]; // 1x1 lower
        let mut b = [8.0f64];
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            0.5,
            mat(&a, 1, 1),
            MatMut::from_slice(&mut b, 1, 1, 1),
        );
        assert_eq!(b[0], 2.0); // (0.5*8)/2
    }

    #[test]
    fn trmm_ignores_opposite_triangle() {
        // Garbage in the strictly-upper part must not affect Lower trmm.
        let mut a = vec![0.0f64; 9];
        a[0] = 1.0;
        a[4] = 2.0;
        a[8] = 3.0;
        a[1] = 4.0; // L(1,0)
        a[3] = f64::NAN; // U(0,1) garbage
        a[6] = f64::NAN;
        a[7] = f64::NAN;
        let mut b = vec![1.0f64; 3];
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1.0,
            mat(&a, 3, 3),
            MatMut::from_slice(&mut b, 3, 1, 3),
        );
        assert_eq!(b, vec![1.0, 6.0, 3.0]);
    }
}
