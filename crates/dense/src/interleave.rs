//! Tier 3 — the AoSoA **interleaved batch tier**: cross-matrix SIMD for
//! matrices smaller than the register microkernel.
//!
//! Per-matrix register tiling (tiers 1–2, [`crate::level3`]) cannot fill
//! SIMD lanes when the whole matrix is smaller than one `MR × NR` tile —
//! `dpotrf` at n ≤ 32 runs near-scalar while blocked `gemm` reaches its
//! throughput plateau. Batched-small engines fix this by vectorizing
//! *across* matrices instead of within them (Deshmukh & Yokota's batched
//! small-GEMM study; Jhurani & Mullowney's multi-small-matrix GEMM
//! interface): pack `L` independent matrices of nearly-equal size —
//! exactly what the implicit-sorting windows produce — into a
//! lane-interleaved (AoSoA) buffer and let every vector instruction
//! advance all `L` factorizations at once.
//!
//! **Layout.** A lane group of `L` matrices (`L` = [`lane_count`]: the
//! 256-bit AVX2 width, 4 for `f64`, 8 for `f32`) with group extent
//! `m × n` stores element `(i, j)` of lane `l` at `(j*m + i)*L + l`: the
//! `L` lanes of one element are contiguous, so one 32-byte vector
//! load/store moves that element for every matrix in the group. Lanes
//! whose matrix is smaller than the group extent — or absent entirely,
//! when the batch count is not a multiple of `L` — are zero-filled by
//! [`pack_lanes`]; zeros are absorbing under the factorization updates,
//! so dead lanes need no per-row masking, only the per-column live masks
//! described below.
//!
//! **Bit-identity contract.** Every lane kernel performs, per lane, the
//! *same floating-point operations in the same order* as the slice-tier
//! reference it mirrors ([`crate::potf2`] Lower in-place,
//! [`crate::level3::tier::gemm_small`], the slice-tier `syrk`/`trsm`
//! substitutions). IEEE-754 arithmetic is lane-wise, so the vectorized
//! results are bit-identical to the scalar tier — including breakdown
//! detection: a non-positive pivot in one lane freezes that lane (all
//! its subsequent stores are masked off, preserving the partially
//! factored state the scalar routine would leave) without perturbing or
//! terminating its lane-mates. The `_portable` entry points run the
//! identical per-lane operation order without vector instructions; they
//! are both the non-AVX2 fallback and the oracle the property tests
//! compare the dispatched path against.

use crate::matrix::{MatMut, MatRef};
use crate::scalar::Scalar;

/// Upper bound on [`lane_count`] over the supported precisions (`f32`'s
/// eight AVX2 lanes) — sizes fixed-capacity per-lane state.
pub const MAX_LANES: usize = 8;

/// Number of interleave lanes for precision `T`: the 256-bit AVX2
/// vector width, 4 for `f64` and 8 for `f32`. The layout uses this
/// width even when the portable fallback executes, so results and
/// buffer shapes are identical across hosts.
#[must_use]
pub fn lane_count<T: Scalar>() -> usize {
    32 / T::BYTES
}

/// Buffer length (in elements) of one `m × n` lane group of `lanes`
/// matrices.
#[must_use]
pub fn interleaved_len(m: usize, n: usize, lanes: usize) -> usize {
    m * n * lanes
}

/// Host-side staging-tile length (in elements) for one order-`n` sweep
/// through [`potrf_group`]: room for the widest lane grouping the
/// dispatcher may choose — [`MAX_LANES`] lanes, i.e. two 4-lane `f64`
/// groups fused into one 8-lane AVX-512 sweep (for `f32` this equals
/// one ordinary group). Deliberately independent of the running host's
/// features, so buffer shapes — like the AoSoA layout itself — are
/// identical everywhere; a host without AVX-512 simply uses the front
/// of the tile.
#[must_use]
pub fn group_tile_len(n: usize) -> usize {
    interleaved_len(n, n, MAX_LANES)
}

/// Offset of element `(i, j)` of lane `l` in an `m`-row group of
/// `lanes` matrices.
#[inline]
#[must_use]
pub fn lane_index(m: usize, lanes: usize, i: usize, j: usize, l: usize) -> usize {
    (j * m + i) * lanes + l
}

/// Packs up to [`lane_count`] matrices into the interleaved buffer of a
/// `m × n` lane group: lane `l` receives `srcs[l]` in its top-left
/// corner; every other element of the buffer — absent lanes, and the
/// rows/columns of lanes smaller than the group extent — is
/// zero-filled, which the lane kernels rely on.
///
/// # Panics
/// If `srcs.len() > lane_count::<T>()`, a source exceeds the group
/// extent, or the buffer is shorter than [`interleaved_len`].
pub fn pack_lanes<T: Scalar>(m: usize, n: usize, srcs: &[MatRef<'_, T>], buf: &mut [T]) {
    let lanes = lane_count::<T>();
    assert!(srcs.len() <= lanes, "pack_lanes: more sources than lanes");
    let len = interleaved_len(m, n, lanes);
    assert!(buf.len() >= len, "pack_lanes: buffer too small");
    for src in srcs {
        assert!(
            src.nrows() <= m && src.ncols() <= n,
            "pack_lanes: source exceeds group extent"
        );
    }
    // Zero-fill only when a group element is not covered by a source
    // (absent lanes, or lanes smaller than the extent) — the common
    // full-and-uniform group skips the pass entirely.
    if srcs.len() < lanes || srcs.iter().any(|s| s.nrows() < m || s.ncols() < n) {
        buf[..len].fill(T::ZERO);
    }
    for (l, src) in srcs.iter().enumerate() {
        for j in 0..src.ncols() {
            let col = src.col_as_slice(j);
            let base = j * m * lanes;
            for (chunk, &v) in buf[base..base + col.len() * lanes]
                .chunks_exact_mut(lanes)
                .zip(col)
            {
                chunk[l] = v;
            }
        }
    }
}

/// Extracts lane `l` of an `m`-row interleaved group into `dst`
/// (element-exact inverse of [`pack_lanes`] over the lane's extent).
///
/// # Panics
/// If the buffer is shorter than the `dst` extent requires.
pub fn unpack_lane<T: Scalar>(buf: &[T], m: usize, l: usize, mut dst: MatMut<'_, T>) {
    let lanes = lane_count::<T>();
    let (rows, cols) = (dst.nrows(), dst.ncols());
    assert!(rows <= m && l < lanes, "unpack_lane: lane out of range");
    if rows > 0 && cols > 0 {
        assert!(
            buf.len() > lane_index(m, lanes, rows - 1, cols - 1, l),
            "unpack_lane: buffer too small"
        );
    }
    for j in 0..cols {
        let col = dst.col_as_mut_slice(j);
        let base = j * m * lanes;
        for (chunk, v) in buf[base..base + col.len() * lanes]
            .chunks_exact(lanes)
            .zip(col)
        {
            *v = chunk[l];
        }
    }
}

/// Packs one **full, uniform** lane group — [`lane_count`] col-major
/// order-`n` matrices stored contiguously in `srcs` — into the
/// interleaved buffer. The batch-throughput sibling of [`pack_lanes`]
/// (bit-identical result for the same inputs): the uniform shape admits
/// an in-register `L × L` block-transpose on AVX2, which is what makes
/// the pack overhead negligible next to the factorization at n ≤ 32.
///
/// # Panics
/// If `srcs` holds fewer than `L` order-`n` matrices or `buf` is
/// shorter than [`interleaved_len`]`(n, n, L)`.
pub fn pack_group<T: Scalar>(n: usize, srcs: &[T], buf: &mut [T]) {
    let lanes = lane_count::<T>();
    assert!(srcs.len() >= n * n * lanes, "pack_group: sources short");
    assert!(
        buf.len() >= interleaved_len(n, n, lanes),
        "pack_group: buffer too small"
    );
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if x86::pack_group(n, srcs, buf) {
        return;
    }
    pack_group_portable(n, srcs, buf);
}

/// Portable reference for [`pack_group`].
///
/// # Panics
/// As [`pack_group`].
pub fn pack_group_portable<T: Scalar>(n: usize, srcs: &[T], buf: &mut [T]) {
    let lanes = lane_count::<T>();
    assert!(srcs.len() >= n * n * lanes, "pack_group: sources short");
    assert!(
        buf.len() >= interleaved_len(n, n, lanes),
        "pack_group: buffer too small"
    );
    for (l, src) in srcs.chunks_exact(n * n).take(lanes).enumerate() {
        for (j, col) in src.chunks_exact(n).enumerate() {
            let base = j * n * lanes;
            for (chunk, &v) in buf[base..base + n * lanes].chunks_exact_mut(lanes).zip(col) {
                chunk[l] = v;
            }
        }
    }
}

/// Unpacks one full uniform lane group back into `dsts` (`L` contiguous
/// col-major order-`n` matrices) — the exact inverse of [`pack_group`].
///
/// # Panics
/// If `dsts` is shorter than `L` order-`n` matrices or `buf` is shorter
/// than [`interleaved_len`]`(n, n, L)`.
pub fn unpack_group<T: Scalar>(n: usize, buf: &[T], dsts: &mut [T]) {
    let lanes = lane_count::<T>();
    assert!(dsts.len() >= n * n * lanes, "unpack_group: dsts short");
    assert!(
        buf.len() >= interleaved_len(n, n, lanes),
        "unpack_group: buffer too small"
    );
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if x86::unpack_group(n, buf, dsts) {
        return;
    }
    unpack_group_portable(n, buf, dsts);
}

/// Portable reference for [`unpack_group`].
///
/// # Panics
/// As [`unpack_group`].
pub fn unpack_group_portable<T: Scalar>(n: usize, buf: &[T], dsts: &mut [T]) {
    let lanes = lane_count::<T>();
    assert!(dsts.len() >= n * n * lanes, "unpack_group: dsts short");
    assert!(
        buf.len() >= interleaved_len(n, n, lanes),
        "unpack_group: buffer too small"
    );
    for (l, dst) in dsts.chunks_exact_mut(n * n).take(lanes).enumerate() {
        for (j, col) in dst.chunks_exact_mut(n).enumerate() {
            let base = j * n * lanes;
            for (chunk, v) in buf[base..base + n * lanes].chunks_exact(lanes).zip(col) {
                *v = chunk[l];
            }
        }
    }
}

/// Factorizes a batch of **full uniform** lane groups in a single call:
/// per group, [`pack_group`] `src` into `tile`, run [`potrf_lanes`] to
/// order `n` on every lane, and [`unpack_group`] into `dst` (broken
/// lanes unpack their partial factors; check `infos`). The group count
/// is `src.len() / (n²·L)` — one dispatch for the whole sweep instead of
/// three per group, the difference between winning and losing to the
/// scalar tier at the smallest orders.
///
/// Writes each `dst` matrix's lower triangle and diagonal; the strict
/// upper triangle is **unspecified** (the AVX2 path leaves `dst`'s
/// prior contents, the portable path copies `src`'s). Pre-fill `dst`
/// with `src` to get `potf2`'s exact in-place result.
///
/// Size `tile` with [`group_tile_len`]`(n)` to enable the widest
/// dispatch the host supports — on AVX-512F machines the `f64` path
/// then fuses consecutive 4-lane group pairs into 8-lane sweeps. A
/// tile of only [`interleaved_len`]`(n, n, L)` still works everywhere
/// but pins `f64` to the 4-lane path. Results are bit-identical either
/// way.
///
/// # Panics
/// If `src` holds less than one full group, `dst` is shorter than
/// `src`, `tile` is shorter than [`interleaved_len`]`(n, n, L)`, or
/// `infos` has fewer than `L` entries per group.
pub fn potrf_group<T: Scalar>(
    n: usize,
    src: &[T],
    dst: &mut [T],
    tile: &mut [T],
    infos: &mut [i32],
) {
    if n == 0 {
        return;
    }
    let lanes = lane_count::<T>();
    let gsz = n * n * lanes;
    let groups = src.len() / gsz;
    assert!(groups > 0, "potrf_group: src short");
    assert!(dst.len() >= groups * gsz, "potrf_group: dst short");
    assert!(
        tile.len() >= interleaved_len(n, n, lanes),
        "potrf_group: tile too small"
    );
    assert!(infos.len() >= groups * lanes, "potrf_group: infos short");
    let ns = [n; MAX_LANES];
    infos[..groups * lanes].fill(0);
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if x86::potrf_group(n, groups, src, dst, tile, &ns[..lanes], infos) {
        return;
    }
    for g in 0..groups {
        pack_group_portable(n, &src[g * gsz..], tile);
        potrf_lanes_portable(
            tile,
            n,
            &ns[..lanes],
            &mut infos[g * lanes..(g + 1) * lanes],
        );
        unpack_group_portable(n, tile, &mut dst[g * gsz..]);
    }
}

// ---------------------------------------------------------------------
// potf2 lanes (Lower) — the driver's batched-small kernel.
// ---------------------------------------------------------------------

/// Lane-parallel unblocked Cholesky (Lower): factorizes lane `l` of the
/// `m × m` group to order `ns[l]`, writing `infos[l] = 0` on success or
/// the 1-based breakdown column (the [`crate::potf2`] convention). A
/// broken lane freezes — its columns before the breakdown stay
/// factored, the rest keep their packed values — and never disturbs its
/// lane-mates. Per lane bit-identical to [`crate::potf2`] Lower on
/// in-place storage.
///
/// Dispatches to the AVX2+FMA path when available, else runs
/// [`potrf_lanes_portable`].
///
/// # Panics
/// If `ns`/`infos` disagree in length, exceed [`lane_count`], name an
/// order above `m`, or the buffer is shorter than the group.
pub fn potrf_lanes<T: Scalar>(buf: &mut [T], m: usize, ns: &[usize], infos: &mut [i32]) {
    check_group::<T>(buf, m, ns, infos);
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if x86::potrf(buf, m, ns, infos) {
        return;
    }
    potrf_lanes_portable(buf, m, ns, infos);
}

/// Portable per-lane reference for [`potrf_lanes`]: identical operation
/// order, one lane at a time. This is the non-AVX2 fallback and the
/// oracle the property tests hold the vector path to.
///
/// # Panics
/// As [`potrf_lanes`].
pub fn potrf_lanes_portable<T: Scalar>(buf: &mut [T], m: usize, ns: &[usize], infos: &mut [i32]) {
    check_group::<T>(buf, m, ns, infos);
    let lanes = lane_count::<T>();
    for (l, (&n, info)) in ns.iter().zip(infos.iter_mut()).enumerate() {
        *info = potrf_one_lane(buf, m, lanes, l, n);
    }
}

fn check_group<T: Scalar>(buf: &[T], m: usize, ns: &[usize], infos: &[i32]) {
    let lanes = lane_count::<T>();
    assert_eq!(ns.len(), infos.len(), "potrf_lanes: ns/infos mismatch");
    assert!(ns.len() <= lanes, "potrf_lanes: more orders than lanes");
    assert!(ns.iter().all(|&n| n <= m), "potrf_lanes: order exceeds m");
    assert!(
        buf.len() >= interleaved_len(m, m, lanes),
        "potrf_lanes: buffer too small"
    );
}

/// [`crate::potf2`] Lower, verbatim operation order, on one lane of the
/// interleaved buffer. Returns 0 or the 1-based breakdown column.
fn potrf_one_lane<T: Scalar>(buf: &mut [T], m: usize, lanes: usize, l: usize, n: usize) -> i32 {
    let at = |i: usize, j: usize| lane_index(m, lanes, i, j, l);
    for j in 0..n {
        let mut ajj = buf[at(j, j)];
        for t in 0..j {
            let v = buf[at(j, t)];
            ajj -= v * v;
        }
        if ajj <= T::ZERO || !ajj.is_finite() {
            return (j + 1) as i32;
        }
        let ajj = ajj.sqrt();
        buf[at(j, j)] = ajj;
        if j + 1 == n {
            continue;
        }
        for t in 0..j {
            let w = buf[at(j, t)];
            if w != T::ZERO {
                let nw = -w;
                for i in (j + 1)..n {
                    buf[at(i, j)] = nw.mul_add(buf[at(i, t)], buf[at(i, j)]);
                }
            }
        }
        for i in (j + 1)..n {
            buf[at(i, j)] = buf[at(i, j)] / ajj;
        }
    }
    0
}

// ---------------------------------------------------------------------
// gemm / syrk / trsm lanes — uniform group extents, per-lane data.
// ---------------------------------------------------------------------

/// Lane-parallel `C ← α·A·Bᵀ + β·C` (`gemm` NT, the Cholesky panel
/// shape): per lane, `A` is `m × k`, `B` is `n × k`, `C` is `m × n`,
/// each argument its own interleaved buffer (row counts `m`, `n`, `m`).
/// Per lane bit-identical to [`crate::level3::tier::gemm_small`] with
/// `(NoTrans, Trans)`.
///
/// # Panics
/// If a buffer is shorter than its group extent requires.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_lanes<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) {
    check_gemm_group::<T>(m, n, k, a, b, c);
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if x86::gemm_nt(m, n, k, alpha, a, b, beta, c) {
        return;
    }
    gemm_nt_lanes_portable(m, n, k, alpha, a, b, beta, c);
}

/// Portable per-lane reference for [`gemm_nt_lanes`].
///
/// # Panics
/// As [`gemm_nt_lanes`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_lanes_portable<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) {
    check_gemm_group::<T>(m, n, k, a, b, c);
    let lanes = lane_count::<T>();
    for l in 0..lanes {
        for j in 0..n {
            // β first (scale semantics: 0 overwrites, 1 is a no-op).
            if beta == T::ZERO {
                for i in 0..m {
                    c[lane_index(m, lanes, i, j, l)] = T::ZERO;
                }
            } else if beta != T::ONE {
                for i in 0..m {
                    c[lane_index(m, lanes, i, j, l)] *= beta;
                }
            }
            if alpha == T::ZERO {
                continue;
            }
            for t in 0..k {
                let w = alpha * b[lane_index(n, lanes, j, t, l)];
                if w != T::ZERO {
                    for i in 0..m {
                        let ci = lane_index(m, lanes, i, j, l);
                        c[ci] = w.mul_add(a[lane_index(m, lanes, i, t, l)], c[ci]);
                    }
                }
            }
        }
    }
}

fn check_gemm_group<T: Scalar>(m: usize, n: usize, k: usize, a: &[T], b: &[T], c: &[T]) {
    let lanes = lane_count::<T>();
    assert!(
        a.len() >= interleaved_len(m, k, lanes),
        "gemm lanes: A short"
    );
    assert!(
        b.len() >= interleaved_len(n, k, lanes),
        "gemm lanes: B short"
    );
    assert!(
        c.len() >= interleaved_len(m, n, lanes),
        "gemm lanes: C short"
    );
}

/// Lane-parallel `syrk` (Lower, NoTrans): per lane
/// `C ← α·A·Aᵀ + β·C` on the lower triangle only, `A` `n × k`, `C`
/// `n × n`. Per lane bit-identical to the slice-tier [`crate::syrk`].
///
/// # Panics
/// If a buffer is shorter than its group extent requires.
pub fn syrk_ln_lanes<T: Scalar>(n: usize, k: usize, alpha: T, a: &[T], beta: T, c: &mut [T]) {
    let lanes = lane_count::<T>();
    assert!(
        a.len() >= interleaved_len(n, k, lanes),
        "syrk lanes: A short"
    );
    assert!(
        c.len() >= interleaved_len(n, n, lanes),
        "syrk lanes: C short"
    );
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if x86::syrk_ln(n, k, alpha, a, beta, c) {
        return;
    }
    syrk_ln_lanes_portable(n, k, alpha, a, beta, c);
}

/// Portable per-lane reference for [`syrk_ln_lanes`].
///
/// # Panics
/// As [`syrk_ln_lanes`].
pub fn syrk_ln_lanes_portable<T: Scalar>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    beta: T,
    c: &mut [T],
) {
    let lanes = lane_count::<T>();
    assert!(
        a.len() >= interleaved_len(n, k, lanes),
        "syrk lanes: A short"
    );
    assert!(
        c.len() >= interleaved_len(n, n, lanes),
        "syrk lanes: C short"
    );
    for l in 0..lanes {
        for j in 0..n {
            if beta == T::ZERO {
                for i in j..n {
                    c[lane_index(n, lanes, i, j, l)] = T::ZERO;
                }
            } else if beta != T::ONE {
                for i in j..n {
                    c[lane_index(n, lanes, i, j, l)] *= beta;
                }
            }
        }
        if alpha == T::ZERO || k == 0 {
            continue;
        }
        for t in 0..k {
            for j in 0..n {
                let w = alpha * a[lane_index(n, lanes, j, t, l)];
                if w != T::ZERO {
                    for i in j..n {
                        let ci = lane_index(n, lanes, i, j, l);
                        c[ci] = w.mul_add(a[lane_index(n, lanes, i, t, l)], c[ci]);
                    }
                }
            }
        }
    }
}

/// Lane-parallel `trsm` (Right, Lower, Trans, NonUnit, α = 1 — the
/// Cholesky panel solve): per lane `B ← B·A⁻ᵀ`, `A` `n × n` lower
/// non-unit, `B` `m × n`. Per lane bit-identical to the slice-tier
/// [`crate::trsm`] substitution (forward column sweep). Lanes whose
/// packed `A` diagonal is zero (absent lanes) produce unspecified
/// values in their own lane only.
///
/// # Panics
/// If a buffer is shorter than its group extent requires.
pub fn trsm_rlt_lanes<T: Scalar>(m: usize, n: usize, a: &[T], b: &mut [T]) {
    let lanes = lane_count::<T>();
    assert!(
        a.len() >= interleaved_len(n, n, lanes),
        "trsm lanes: A short"
    );
    assert!(
        b.len() >= interleaved_len(m, n, lanes),
        "trsm lanes: B short"
    );
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if x86::trsm_rlt(m, n, a, b) {
        return;
    }
    trsm_rlt_lanes_portable(m, n, a, b);
}

/// Portable per-lane reference for [`trsm_rlt_lanes`].
///
/// # Panics
/// As [`trsm_rlt_lanes`].
pub fn trsm_rlt_lanes_portable<T: Scalar>(m: usize, n: usize, a: &[T], b: &mut [T]) {
    let lanes = lane_count::<T>();
    assert!(
        a.len() >= interleaved_len(n, n, lanes),
        "trsm lanes: A short"
    );
    assert!(
        b.len() >= interleaved_len(m, n, lanes),
        "trsm lanes: B short"
    );
    for l in 0..lanes {
        for j in 0..n {
            for t in 0..j {
                // op(A)(t, j) = A(j, t) under Trans.
                let w = a[lane_index(n, lanes, j, t, l)];
                if w != T::ZERO {
                    let nw = -w;
                    for i in 0..m {
                        let bi = lane_index(m, lanes, i, j, l);
                        b[bi] = nw.mul_add(b[lane_index(m, lanes, i, t, l)], b[bi]);
                    }
                }
            }
            let ajj = a[lane_index(n, lanes, j, j, l)];
            for i in 0..m {
                b[lane_index(m, lanes, i, j, l)] /= ajj;
            }
        }
    }
}

// ---------------------------------------------------------------------
// AVX2+FMA lane kernels.
// ---------------------------------------------------------------------

/// One 256-bit vector instruction per element advances every lane at
/// once; per-lane divergence (breakdown, the `w != 0` skip, absent
/// lanes) is handled by blend-masked stores, which preserve the exact
/// skip semantics of the scalar tier (including signed zeros). Selected
/// per call by `TypeId` after a runtime CPU-feature check, exactly like
/// the blocked tier's microkernel.
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod x86 {
    use super::Scalar;
    use core::any::TypeId;
    use std::arch::x86_64::*;

    #[inline]
    fn simd_available() -> bool {
        // `is_x86_feature_detected!` caches its answer in an atomic, so
        // the per-call cost is two relaxed loads.
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    #[inline]
    fn wide_f64_available() -> bool {
        is_x86_feature_detected!("avx512f")
    }

    pub(super) fn potrf<T: Scalar>(
        buf: &mut [T],
        m: usize,
        ns: &[usize],
        infos: &mut [i32],
    ) -> bool {
        if !simd_available() {
            return false;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // Safety: `T` is exactly `f64` and AVX2+FMA was detected.
            unsafe { potrf_f64(cast_mut::<T, f64>(buf), m, ns, infos) };
            true
        } else if TypeId::of::<T>() == TypeId::of::<f32>() {
            // Safety: as above with `T` == `f32`.
            unsafe { potrf_f32(cast_mut::<T, f32>(buf), m, ns, infos) };
            true
        } else {
            false
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemm_nt<T: Scalar>(
        m: usize,
        n: usize,
        k: usize,
        alpha: T,
        a: &[T],
        b: &[T],
        beta: T,
        c: &mut [T],
    ) -> bool {
        if !simd_available() {
            return false;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // Safety: `T` is exactly `f64` and AVX2+FMA was detected.
            unsafe {
                gemm_nt_f64(
                    m,
                    n,
                    k,
                    scalar_as::<T, f64>(alpha),
                    cast::<T, f64>(a),
                    cast::<T, f64>(b),
                    scalar_as::<T, f64>(beta),
                    cast_mut::<T, f64>(c),
                );
            }
            true
        } else if TypeId::of::<T>() == TypeId::of::<f32>() {
            // Safety: as above with `T` == `f32`.
            unsafe {
                gemm_nt_f32(
                    m,
                    n,
                    k,
                    scalar_as::<T, f32>(alpha),
                    cast::<T, f32>(a),
                    cast::<T, f32>(b),
                    scalar_as::<T, f32>(beta),
                    cast_mut::<T, f32>(c),
                );
            }
            true
        } else {
            false
        }
    }

    pub(super) fn syrk_ln<T: Scalar>(
        n: usize,
        k: usize,
        alpha: T,
        a: &[T],
        beta: T,
        c: &mut [T],
    ) -> bool {
        if !simd_available() {
            return false;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // Safety: `T` is exactly `f64` and AVX2+FMA was detected.
            unsafe {
                syrk_ln_f64(
                    n,
                    k,
                    scalar_as::<T, f64>(alpha),
                    cast::<T, f64>(a),
                    scalar_as::<T, f64>(beta),
                    cast_mut::<T, f64>(c),
                );
            }
            true
        } else if TypeId::of::<T>() == TypeId::of::<f32>() {
            // Safety: as above with `T` == `f32`.
            unsafe {
                syrk_ln_f32(
                    n,
                    k,
                    scalar_as::<T, f32>(alpha),
                    cast::<T, f32>(a),
                    scalar_as::<T, f32>(beta),
                    cast_mut::<T, f32>(c),
                );
            }
            true
        } else {
            false
        }
    }

    pub(super) fn trsm_rlt<T: Scalar>(m: usize, n: usize, a: &[T], b: &mut [T]) -> bool {
        if !simd_available() {
            return false;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // Safety: `T` is exactly `f64` and AVX2+FMA was detected.
            unsafe { trsm_rlt_f64(m, n, cast::<T, f64>(a), cast_mut::<T, f64>(b)) };
            true
        } else if TypeId::of::<T>() == TypeId::of::<f32>() {
            // Safety: as above with `T` == `f32`.
            unsafe { trsm_rlt_f32(m, n, cast::<T, f32>(a), cast_mut::<T, f32>(b)) };
            true
        } else {
            false
        }
    }

    pub(super) fn pack_group<T: Scalar>(n: usize, srcs: &[T], buf: &mut [T]) -> bool {
        if !simd_available() {
            return false;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // Safety: `T` is exactly `f64` and AVX2 was detected.
            unsafe { pack_group_f64(n, cast::<T, f64>(srcs), cast_mut::<T, f64>(buf), false) };
            true
        } else if TypeId::of::<T>() == TypeId::of::<f32>() {
            // Safety: as above with `T` == `f32`.
            unsafe { pack_group_f32(n, cast::<T, f32>(srcs), cast_mut::<T, f32>(buf), false) };
            true
        } else {
            false
        }
    }

    pub(super) fn unpack_group<T: Scalar>(n: usize, buf: &[T], dsts: &mut [T]) -> bool {
        if !simd_available() {
            return false;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // Safety: `T` is exactly `f64` and AVX2 was detected.
            unsafe { unpack_group_f64(n, cast::<T, f64>(buf), cast_mut::<T, f64>(dsts), false) };
            true
        } else if TypeId::of::<T>() == TypeId::of::<f32>() {
            // Safety: as above with `T` == `f32`.
            unsafe { unpack_group_f32(n, cast::<T, f32>(buf), cast_mut::<T, f32>(dsts), false) };
            true
        } else {
            false
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn potrf_group<T: Scalar>(
        n: usize,
        groups: usize,
        src: &[T],
        dst: &mut [T],
        tile: &mut [T],
        ns: &[usize],
        infos: &mut [i32],
    ) -> bool {
        if !simd_available() {
            return false;
        }
        if TypeId::of::<T>() == TypeId::of::<f64>() {
            // Safety: `T` is exactly `f64` and AVX2+FMA were detected;
            // the wide path additionally checks AVX-512F at runtime.
            unsafe {
                let src = cast::<T, f64>(src);
                let dst = cast_mut::<T, f64>(dst);
                let tile = cast_mut::<T, f64>(tile);
                if n == 4 {
                    potrf_group4_f64(groups, src, dst, tile, ns, infos);
                } else {
                    // Fuse consecutive 4-lane groups into 8-lane
                    // AVX-512 sweeps when the host supports them and
                    // the caller staged a full-width tile
                    // ([`super::group_tile_len`]); narrow hosts and
                    // narrow tiles keep the 4-lane path unchanged.
                    let pairs = if wide_f64_available() && tile.len() >= n * n * 8 {
                        groups / 2
                    } else {
                        0
                    };
                    if pairs > 0 {
                        potrf_group_f64_w8(n, pairs, src, dst, tile, infos);
                    }
                    let g = pairs * 2;
                    if g < groups {
                        let gsz = n * n * 4;
                        potrf_group_f64(
                            n,
                            groups - g,
                            &src[g * gsz..],
                            &mut dst[g * gsz..],
                            tile,
                            ns,
                            &mut infos[g * 4..],
                        );
                    }
                }
            }
            true
        } else if TypeId::of::<T>() == TypeId::of::<f32>() {
            // Safety: as above with `T` == `f32`.
            unsafe {
                potrf_group_f32(
                    n,
                    groups,
                    cast::<T, f32>(src),
                    cast_mut::<T, f32>(dst),
                    cast_mut::<T, f32>(tile),
                    ns,
                    infos,
                );
            }
            true
        } else {
            false
        }
    }

    /// 4×4 `f64` register transpose.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn tr4(
        v0: __m256d,
        v1: __m256d,
        v2: __m256d,
        v3: __m256d,
    ) -> (__m256d, __m256d, __m256d, __m256d) {
        let t0 = _mm256_unpacklo_pd(v0, v1);
        let t1 = _mm256_unpackhi_pd(v0, v1);
        let t2 = _mm256_unpacklo_pd(v2, v3);
        let t3 = _mm256_unpackhi_pd(v2, v3);
        (
            _mm256_permute2f128_pd(t0, t2, 0x20),
            _mm256_permute2f128_pd(t1, t3, 0x20),
            _mm256_permute2f128_pd(t0, t2, 0x31),
            _mm256_permute2f128_pd(t1, t3, 0x31),
        )
    }

    /// Fully in-register order-4 `f64` group factorization: the four
    /// lane matrices live in sixteen vectors across the whole
    /// pack → factor → unpack, with no staging tile and no loops.
    /// Every operation is the scalar tier's, in the scalar tier's
    /// order, so successful lanes are bit-identical to `potf2`.
    /// Returns `false` — before touching `dst` — on any failed pivot
    /// or any exactly-zero multiplier, so the caller can rerun the
    /// group through the general masked kernel, which reproduces the
    /// scalar tier's per-lane breakdown and skip semantics.
    ///
    /// # Safety
    /// AVX2+FMA detected; `src`/`dst` hold at least one full group.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn potrf4_f64(src: &[f64], dst: &mut [f64]) -> bool {
        // SAFETY: fn contract — `src` and `dst` hold at least one full
        // group (64 elements), so every offset below (max 60 + 4-wide
        // access) is in bounds; unaligned loads/stores are used throughout.
        unsafe {
            const FULL: i32 = 0xF;
            let s = src.as_ptr();
            let zero = _mm256_setzero_pd();
            let neg0 = _mm256_set1_pd(-0.0);
            let inf = _mm256_set1_pd(f64::INFINITY);
            let ok = |v: __m256d| {
                let fine = _mm256_and_pd(
                    _mm256_cmp_pd::<_CMP_GT_OQ>(v, zero),
                    _mm256_cmp_pd::<_CMP_LT_OQ>(v, inf),
                );
                _mm256_movemask_pd(fine) == FULL
            };
            let nonzero =
                |v: __m256d| _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_NEQ_UQ>(v, zero)) == FULL;
            // Pack: x_ij holds element (i, j) of all four matrices.
            let (x00, x10, x20, x30) = tr4(
                _mm256_loadu_pd(s),
                _mm256_loadu_pd(s.add(16)),
                _mm256_loadu_pd(s.add(32)),
                _mm256_loadu_pd(s.add(48)),
            );
            let (x01, x11, x21, x31) = tr4(
                _mm256_loadu_pd(s.add(4)),
                _mm256_loadu_pd(s.add(20)),
                _mm256_loadu_pd(s.add(36)),
                _mm256_loadu_pd(s.add(52)),
            );
            let (x02, x12, x22, x32) = tr4(
                _mm256_loadu_pd(s.add(8)),
                _mm256_loadu_pd(s.add(24)),
                _mm256_loadu_pd(s.add(40)),
                _mm256_loadu_pd(s.add(56)),
            );
            let (x03, x13, x23, x33) = tr4(
                _mm256_loadu_pd(s.add(12)),
                _mm256_loadu_pd(s.add(28)),
                _mm256_loadu_pd(s.add(44)),
                _mm256_loadu_pd(s.add(60)),
            );
            // Column 0.
            if !ok(x00) {
                return false;
            }
            let p0 = _mm256_sqrt_pd(x00);
            let l10 = _mm256_div_pd(x10, p0);
            let l20 = _mm256_div_pd(x20, p0);
            let l30 = _mm256_div_pd(x30, p0);
            // Column 1.
            let a11 = _mm256_sub_pd(x11, _mm256_mul_pd(l10, l10));
            if !ok(a11) || !nonzero(l10) {
                return false;
            }
            let p1 = _mm256_sqrt_pd(a11);
            let nw = _mm256_xor_pd(l10, neg0);
            let l21 = _mm256_div_pd(_mm256_fmadd_pd(nw, l20, x21), p1);
            let l31 = _mm256_div_pd(_mm256_fmadd_pd(nw, l30, x31), p1);
            // Column 2.
            let mut a22 = _mm256_sub_pd(x22, _mm256_mul_pd(l20, l20));
            a22 = _mm256_sub_pd(a22, _mm256_mul_pd(l21, l21));
            if !ok(a22) || !nonzero(l20) || !nonzero(l21) {
                return false;
            }
            let p2 = _mm256_sqrt_pd(a22);
            let mut t32 = _mm256_fmadd_pd(_mm256_xor_pd(l20, neg0), l30, x32);
            t32 = _mm256_fmadd_pd(_mm256_xor_pd(l21, neg0), l31, t32);
            let l32 = _mm256_div_pd(t32, p2);
            // Column 3 (last: no trailing update or divide).
            let mut a33 = _mm256_sub_pd(x33, _mm256_mul_pd(l30, l30));
            a33 = _mm256_sub_pd(a33, _mm256_mul_pd(l31, l31));
            a33 = _mm256_sub_pd(a33, _mm256_mul_pd(l32, l32));
            if !ok(a33) {
                return false;
            }
            let l33 = _mm256_sqrt_pd(a33);
            // Unpack; strict upper elements carry their source values, the
            // in-place behavior of the scalar tier.
            let d = dst.as_mut_ptr();
            let (c0, c1, c2, c3) = tr4(p0, l10, l20, l30);
            _mm256_storeu_pd(d, c0);
            _mm256_storeu_pd(d.add(16), c1);
            _mm256_storeu_pd(d.add(32), c2);
            _mm256_storeu_pd(d.add(48), c3);
            let (c0, c1, c2, c3) = tr4(x01, p1, l21, l31);
            _mm256_storeu_pd(d.add(4), c0);
            _mm256_storeu_pd(d.add(20), c1);
            _mm256_storeu_pd(d.add(36), c2);
            _mm256_storeu_pd(d.add(52), c3);
            let (c0, c1, c2, c3) = tr4(x02, x12, p2, l32);
            _mm256_storeu_pd(d.add(8), c0);
            _mm256_storeu_pd(d.add(24), c1);
            _mm256_storeu_pd(d.add(40), c2);
            _mm256_storeu_pd(d.add(56), c3);
            let (c0, c1, c2, c3) = tr4(x03, x13, x23, l33);
            _mm256_storeu_pd(d.add(12), c0);
            _mm256_storeu_pd(d.add(28), c1);
            _mm256_storeu_pd(d.add(44), c2);
            _mm256_storeu_pd(d.add(60), c3);
            true
        }
    }

    /// Batch driver for [`potrf4_f64`]: the rare bail-outs rerun
    /// through the general staged kernel.
    ///
    /// # Safety
    /// As [`potrf4_f64`]; extents checked by the dispatching wrapper.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn potrf_group4_f64(
        groups: usize,
        src: &[f64],
        dst: &mut [f64],
        tile: &mut [f64],
        ns: &[usize],
        infos: &mut [i32],
    ) {
        // SAFETY: fn contract — the dispatching wrapper checked that
        // `src`/`dst` hold `groups` full groups, `tile` one group, and
        // `infos` 4 slots per group, so every per-group slice below is in
        // bounds and the callees’ extent contracts hold.
        unsafe {
            for g in 0..groups {
                let s = &src[g * 64..];
                if !potrf4_f64(s, &mut dst[g * 64..]) {
                    pack_group_f64(4, s, tile, true);
                    potrf_f64(tile, 4, ns, &mut infos[g * 4..]);
                    unpack_group_f64(4, tile, &mut dst[g * 64..], true);
                }
            }
        }
    }

    /// 8×8 `f32` register transpose.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn tr8(v: [__m256; 8]) -> [__m256; 8] {
        let t0 = _mm256_unpacklo_ps(v[0], v[1]);
        let t1 = _mm256_unpackhi_ps(v[0], v[1]);
        let t2 = _mm256_unpacklo_ps(v[2], v[3]);
        let t3 = _mm256_unpackhi_ps(v[2], v[3]);
        let t4 = _mm256_unpacklo_ps(v[4], v[5]);
        let t5 = _mm256_unpackhi_ps(v[4], v[5]);
        let t6 = _mm256_unpacklo_ps(v[6], v[7]);
        let t7 = _mm256_unpackhi_ps(v[6], v[7]);
        let u0 = _mm256_shuffle_ps::<0x44>(t0, t2);
        let u1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
        let u2 = _mm256_shuffle_ps::<0x44>(t1, t3);
        let u3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
        let u4 = _mm256_shuffle_ps::<0x44>(t4, t6);
        let u5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
        let u6 = _mm256_shuffle_ps::<0x44>(t5, t7);
        let u7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
        [
            _mm256_permute2f128_ps(u0, u4, 0x20),
            _mm256_permute2f128_ps(u1, u5, 0x20),
            _mm256_permute2f128_ps(u2, u6, 0x20),
            _mm256_permute2f128_ps(u3, u7, 0x20),
            _mm256_permute2f128_ps(u0, u4, 0x31),
            _mm256_permute2f128_ps(u1, u5, 0x31),
            _mm256_permute2f128_ps(u2, u6, 0x31),
            _mm256_permute2f128_ps(u3, u7, 0x31),
        ]
    }

    /// # Safety
    /// AVX2 detected; slice extents checked by the dispatching wrapper.
    /// `lower` restricts each column to its block-aligned lower
    /// triangle (`i ≥ j & !3`) — everything a Lower factorization
    /// touches — halving the moved bytes.
    #[target_feature(enable = "avx2")]
    unsafe fn pack_group_f64(n: usize, srcs: &[f64], buf: &mut [f64], lower: bool) {
        // SAFETY: fn contract — `srcs` holds 4 n×n matrices and `buf` one
        // interleaved group (4·n·n), so column bases `l·n² + j·n` and the
        // 4-wide row accesses at `i ≤ n−4` (scalar tail below n) stay in
        // bounds for both slices.
        unsafe {
            let s = srcs.as_ptr();
            let o = buf.as_mut_ptr();
            let mm = n * n;
            for j in 0..n {
                let c0 = s.add(j * n);
                let c1 = s.add(mm + j * n);
                let c2 = s.add(2 * mm + j * n);
                let c3 = s.add(3 * mm + j * n);
                let ob = o.add(j * n * 4);
                let mut i = if lower { j & !3 } else { 0 };
                while i + 4 <= n {
                    let (r0, r1, r2, r3) = tr4(
                        _mm256_loadu_pd(c0.add(i)),
                        _mm256_loadu_pd(c1.add(i)),
                        _mm256_loadu_pd(c2.add(i)),
                        _mm256_loadu_pd(c3.add(i)),
                    );
                    _mm256_storeu_pd(ob.add(i * 4), r0);
                    _mm256_storeu_pd(ob.add(i * 4 + 4), r1);
                    _mm256_storeu_pd(ob.add(i * 4 + 8), r2);
                    _mm256_storeu_pd(ob.add(i * 4 + 12), r3);
                    i += 4;
                }
                while i < n {
                    *ob.add(i * 4) = *c0.add(i);
                    *ob.add(i * 4 + 1) = *c1.add(i);
                    *ob.add(i * 4 + 2) = *c2.add(i);
                    *ob.add(i * 4 + 3) = *c3.add(i);
                    i += 1;
                }
            }
        }
    }

    /// # Safety
    /// As [`pack_group_f64`].
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_group_f64(n: usize, buf: &[f64], dsts: &mut [f64], lower: bool) {
        // SAFETY: fn contract — mirror of `pack_group_f64`: `buf` holds one
        // interleaved group and `dsts` 4 n×n matrices, same in-bounds
        // offset argument with loads and stores exchanged.
        unsafe {
            let b = buf.as_ptr();
            let d = dsts.as_mut_ptr();
            let mm = n * n;
            for j in 0..n {
                let c0 = d.add(j * n);
                let c1 = d.add(mm + j * n);
                let c2 = d.add(2 * mm + j * n);
                let c3 = d.add(3 * mm + j * n);
                let ib = b.add(j * n * 4);
                let mut i = if lower { j & !3 } else { 0 };
                while i + 4 <= n {
                    let (r0, r1, r2, r3) = tr4(
                        _mm256_loadu_pd(ib.add(i * 4)),
                        _mm256_loadu_pd(ib.add(i * 4 + 4)),
                        _mm256_loadu_pd(ib.add(i * 4 + 8)),
                        _mm256_loadu_pd(ib.add(i * 4 + 12)),
                    );
                    _mm256_storeu_pd(c0.add(i), r0);
                    _mm256_storeu_pd(c1.add(i), r1);
                    _mm256_storeu_pd(c2.add(i), r2);
                    _mm256_storeu_pd(c3.add(i), r3);
                    i += 4;
                }
                while i < n {
                    *c0.add(i) = *ib.add(i * 4);
                    *c1.add(i) = *ib.add(i * 4 + 1);
                    *c2.add(i) = *ib.add(i * 4 + 2);
                    *c3.add(i) = *ib.add(i * 4 + 3);
                    i += 1;
                }
            }
        }
    }

    /// Stride-8 variant of [`pack_group_f64`]: register-transposes the
    /// eight matrices of two consecutive 4-lane groups into one 8-lane
    /// tile so a single AVX-512 sweep factors both. Two `tr4` half
    /// transposes per 4-row block (one per group) rather than an 8-row
    /// f64 tr8 — deliberately, so the block-aligned lower-triangle
    /// restriction stays `i ≥ j & !3` and the set of elements moved
    /// (and therefore the bytes written back to `dst` on unpack) is
    /// exactly the narrow path's.
    ///
    /// # Safety
    /// AVX2 detected; `srcs` holds 8 n×n matrices and `buf` one 8-lane
    /// interleaved group (n·n·8 elements).
    #[target_feature(enable = "avx2")]
    unsafe fn pack_pair_f64_w8(n: usize, srcs: &[f64], buf: &mut [f64]) {
        // SAFETY: fn contract — lane bases `l·n² + j·n` for l < 8 plus
        // 4-wide row accesses at `i ≤ n−4` (scalar tail below n) stay
        // inside the 8·n² source; tile offsets reach at most
        // `(n−1)·8 + (n−1)·n·8 + 7 < n·n·8`.
        unsafe {
            let s = srcs.as_ptr();
            let o = buf.as_mut_ptr();
            let mm = n * n;
            for j in 0..n {
                let mut cols = [core::ptr::null::<f64>(); 8];
                for (l, c) in cols.iter_mut().enumerate() {
                    *c = s.add(l * mm + j * n);
                }
                let ob = o.add(j * n * 8);
                let mut i = j & !3;
                while i + 4 <= n {
                    for h in 0..2 {
                        let (r0, r1, r2, r3) = tr4(
                            _mm256_loadu_pd(cols[4 * h].add(i)),
                            _mm256_loadu_pd(cols[4 * h + 1].add(i)),
                            _mm256_loadu_pd(cols[4 * h + 2].add(i)),
                            _mm256_loadu_pd(cols[4 * h + 3].add(i)),
                        );
                        _mm256_storeu_pd(ob.add(i * 8 + h * 4), r0);
                        _mm256_storeu_pd(ob.add((i + 1) * 8 + h * 4), r1);
                        _mm256_storeu_pd(ob.add((i + 2) * 8 + h * 4), r2);
                        _mm256_storeu_pd(ob.add((i + 3) * 8 + h * 4), r3);
                    }
                    i += 4;
                }
                while i < n {
                    for (l, c) in cols.iter().enumerate() {
                        *ob.add(i * 8 + l) = *c.add(i);
                    }
                    i += 1;
                }
            }
        }
    }

    /// # Safety
    /// As [`pack_pair_f64_w8`], with `buf` read and `dsts` written.
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_pair_f64_w8(n: usize, buf: &[f64], dsts: &mut [f64]) {
        // SAFETY: fn contract — mirror of `pack_pair_f64_w8` with loads
        // and stores exchanged; same in-bounds offset argument.
        unsafe {
            let b = buf.as_ptr();
            let d = dsts.as_mut_ptr();
            let mm = n * n;
            for j in 0..n {
                let mut cols = [core::ptr::null_mut::<f64>(); 8];
                for (l, c) in cols.iter_mut().enumerate() {
                    *c = d.add(l * mm + j * n);
                }
                let ib = b.add(j * n * 8);
                let mut i = j & !3;
                while i + 4 <= n {
                    for h in 0..2 {
                        let (r0, r1, r2, r3) = tr4(
                            _mm256_loadu_pd(ib.add(i * 8 + h * 4)),
                            _mm256_loadu_pd(ib.add((i + 1) * 8 + h * 4)),
                            _mm256_loadu_pd(ib.add((i + 2) * 8 + h * 4)),
                            _mm256_loadu_pd(ib.add((i + 3) * 8 + h * 4)),
                        );
                        _mm256_storeu_pd(cols[4 * h].add(i), r0);
                        _mm256_storeu_pd(cols[4 * h + 1].add(i), r1);
                        _mm256_storeu_pd(cols[4 * h + 2].add(i), r2);
                        _mm256_storeu_pd(cols[4 * h + 3].add(i), r3);
                    }
                    i += 4;
                }
                while i < n {
                    for (l, c) in cols.iter().enumerate() {
                        *c.add(i) = *ib.add(i * 8 + l);
                    }
                    i += 1;
                }
            }
        }
    }

    /// 8-lane AVX-512 port of the 4-lane `f64` lane kernel
    /// (`potrf_f64`), specialized to the uniform groups `potrf_group`
    /// builds: all eight lanes share one order `m`, so the per-lane
    /// end-of-order tracking drops out and the live mask starts full.
    /// Lane predicates live in `__mmask8` registers instead of
    /// sign-bit vectors, with masked stores replacing blends — the
    /// bytes written are the same. Every arithmetic operation and its
    /// order is exactly the 4-lane kernel's (lane width never enters
    /// the value computation), so surviving lanes stay bit-identical
    /// to `potf2`. Sign flips go through an integer-domain xor because
    /// `_mm512_xor_pd` would need AVX-512DQ and only AVX-512F is
    /// required here.
    ///
    /// # Safety
    /// AVX-512F detected; `buf` holds one 8-lane interleaved m×m group
    /// (m·m·8 elements) and `infos` at least 8 entries.
    // Indexed `0..j` loops mirror the column recurrence (and the macro
    // kernel's shape); `nws[t]` rides along with `at(i, t)` loads.
    #[allow(clippy::needless_range_loop)]
    #[target_feature(enable = "avx512f")]
    unsafe fn potrf8_f64(buf: &mut [f64], m: usize, infos: &mut [i32]) {
        // SAFETY: fn contract — every `at(i, j)` offset with i, j < m
        // is an in-bounds 8-wide access into the m·m·8 tile; `infos`
        // is indexed by lane bits l < 8.
        unsafe {
            const FULL: u8 = 0xFF;
            const NWS: usize = 16;
            let mut nws = [_mm512_setzero_pd(); NWS];
            let p = buf.as_mut_ptr();
            let at = |i: usize, j: usize| (j * m + i) * 8;
            let zero = _mm512_setzero_pd();
            let neg0 = _mm512_set1_pd(-0.0);
            let inf = _mm512_set1_pd(f64::INFINITY);
            let neg = |v: __m512d| {
                _mm512_castsi512_pd(_mm512_xor_epi64(
                    _mm512_castpd_si512(v),
                    _mm512_castpd_si512(neg0),
                ))
            };
            let mut lm: u8 = FULL;
            for j in 0..m {
                if lm == 0 {
                    break;
                }
                // ajj ← a(j,j) − Σ a(j,t)² — sequential mul-then-sub,
                // the scalar tier's rounding sequence (no fused op);
                // the fast path's nonzero test and, at small orders,
                // its negated-multiplier stash ride along.
                let mut ajj = _mm512_loadu_pd(p.add(at(j, j)));
                let mut nz: u8 = lm;
                if m <= NWS {
                    for t in 0..j {
                        let v = _mm512_loadu_pd(p.add(at(j, t)));
                        ajj = _mm512_sub_pd(ajj, _mm512_mul_pd(v, v));
                        nz &= _mm512_cmp_pd_mask::<_CMP_NEQ_UQ>(v, zero);
                        nws[t] = neg(v);
                    }
                } else {
                    for t in 0..j {
                        let v = _mm512_loadu_pd(p.add(at(j, t)));
                        ajj = _mm512_sub_pd(ajj, _mm512_mul_pd(v, v));
                        nz &= _mm512_cmp_pd_mask::<_CMP_NEQ_UQ>(v, zero);
                    }
                }
                // Same predicate as the scalar tier's
                // `ajj <= 0 || !ajj.is_finite()`: positive AND below
                // +∞ (NaN fails both ordered compares).
                let ok = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(ajj, zero)
                    & _mm512_cmp_pd_mask::<_CMP_LT_OQ>(ajj, inf);
                let dead = !ok & lm;
                if dead != 0 {
                    for (l, info) in infos.iter_mut().enumerate().take(8) {
                        if dead & (1 << l) != 0 {
                            *info = (j + 1) as i32;
                        }
                    }
                    lm &= ok;
                    if lm == 0 {
                        continue;
                    }
                }
                let piv = _mm512_sqrt_pd(ajj);
                if lm == FULL {
                    _mm512_storeu_pd(p.add(at(j, j)), piv);
                } else {
                    _mm512_mask_storeu_pd(p.add(at(j, j)), lm, piv);
                }
                if j + 1 == m {
                    continue;
                }
                // Fast path: every lane live, every multiplier
                // nonzero — same i-outer register accumulation (and
                // rounding sequence) as the 4-lane kernel.
                let fast = lm == FULL && nz == FULL;
                if fast && m < 12 {
                    for i in (j + 1)..m {
                        let mut acc = _mm512_loadu_pd(p.add(at(i, j)));
                        for t in 0..j {
                            acc = _mm512_fmadd_pd(nws[t], _mm512_loadu_pd(p.add(at(i, t))), acc);
                        }
                        _mm512_storeu_pd(p.add(at(i, j)), _mm512_div_pd(acc, piv));
                    }
                    continue;
                }
                if fast && m <= NWS {
                    let mut i = j + 1;
                    while i + 4 <= m {
                        let mut a0 = _mm512_loadu_pd(p.add(at(i, j)));
                        let mut a1 = _mm512_loadu_pd(p.add(at(i + 1, j)));
                        let mut a2 = _mm512_loadu_pd(p.add(at(i + 2, j)));
                        let mut a3 = _mm512_loadu_pd(p.add(at(i + 3, j)));
                        for t in 0..j {
                            let nw = nws[t];
                            a0 = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i, t))), a0);
                            a1 = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i + 1, t))), a1);
                            a2 = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i + 2, t))), a2);
                            a3 = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i + 3, t))), a3);
                        }
                        _mm512_storeu_pd(p.add(at(i, j)), _mm512_div_pd(a0, piv));
                        _mm512_storeu_pd(p.add(at(i + 1, j)), _mm512_div_pd(a1, piv));
                        _mm512_storeu_pd(p.add(at(i + 2, j)), _mm512_div_pd(a2, piv));
                        _mm512_storeu_pd(p.add(at(i + 3, j)), _mm512_div_pd(a3, piv));
                        i += 4;
                    }
                    while i < m {
                        let mut acc = _mm512_loadu_pd(p.add(at(i, j)));
                        for t in 0..j {
                            acc = _mm512_fmadd_pd(nws[t], _mm512_loadu_pd(p.add(at(i, t))), acc);
                        }
                        _mm512_storeu_pd(p.add(at(i, j)), _mm512_div_pd(acc, piv));
                        i += 1;
                    }
                    continue;
                }
                if fast {
                    let mut i = j + 1;
                    while i + 4 <= m {
                        let mut a0 = _mm512_loadu_pd(p.add(at(i, j)));
                        let mut a1 = _mm512_loadu_pd(p.add(at(i + 1, j)));
                        let mut a2 = _mm512_loadu_pd(p.add(at(i + 2, j)));
                        let mut a3 = _mm512_loadu_pd(p.add(at(i + 3, j)));
                        for t in 0..j {
                            let nw = neg(_mm512_loadu_pd(p.add(at(j, t))));
                            a0 = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i, t))), a0);
                            a1 = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i + 1, t))), a1);
                            a2 = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i + 2, t))), a2);
                            a3 = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i + 3, t))), a3);
                        }
                        _mm512_storeu_pd(p.add(at(i, j)), _mm512_div_pd(a0, piv));
                        _mm512_storeu_pd(p.add(at(i + 1, j)), _mm512_div_pd(a1, piv));
                        _mm512_storeu_pd(p.add(at(i + 2, j)), _mm512_div_pd(a2, piv));
                        _mm512_storeu_pd(p.add(at(i + 3, j)), _mm512_div_pd(a3, piv));
                        i += 4;
                    }
                    while i < m {
                        let mut acc = _mm512_loadu_pd(p.add(at(i, j)));
                        for t in 0..j {
                            let nw = neg(_mm512_loadu_pd(p.add(at(j, t))));
                            acc = _mm512_fmadd_pd(nw, _mm512_loadu_pd(p.add(at(i, t))), acc);
                        }
                        _mm512_storeu_pd(p.add(at(i, j)), _mm512_div_pd(acc, piv));
                        i += 1;
                    }
                    continue;
                }
                // General masked path: skip exactly-zero multipliers
                // per lane (the scalar tier's `w == 0` skip), then the
                // masked divide.
                for t in 0..j {
                    let w = _mm512_loadu_pd(p.add(at(j, t)));
                    let wm = lm & _mm512_cmp_pd_mask::<_CMP_NEQ_UQ>(w, zero);
                    if wm == 0 {
                        continue;
                    }
                    let nw = neg(w);
                    if wm == FULL {
                        for i in (j + 1)..m {
                            let cv = _mm512_loadu_pd(p.add(at(i, j)));
                            let av = _mm512_loadu_pd(p.add(at(i, t)));
                            _mm512_storeu_pd(p.add(at(i, j)), _mm512_fmadd_pd(nw, av, cv));
                        }
                    } else {
                        for i in (j + 1)..m {
                            let cv = _mm512_loadu_pd(p.add(at(i, j)));
                            let av = _mm512_loadu_pd(p.add(at(i, t)));
                            let r = _mm512_fmadd_pd(nw, av, cv);
                            _mm512_mask_storeu_pd(p.add(at(i, j)), wm, r);
                        }
                    }
                }
                if lm == FULL {
                    for i in (j + 1)..m {
                        let cv = _mm512_loadu_pd(p.add(at(i, j)));
                        _mm512_storeu_pd(p.add(at(i, j)), _mm512_div_pd(cv, piv));
                    }
                } else {
                    for i in (j + 1)..m {
                        let cv = _mm512_loadu_pd(p.add(at(i, j)));
                        let r = _mm512_div_pd(cv, piv);
                        _mm512_mask_storeu_pd(p.add(at(i, j)), lm, r);
                    }
                }
            }
        }
    }

    /// Pack → factor → unpack for two consecutive 4-lane groups fused
    /// into one 8-lane AVX-512 sweep. Lane `l` of the wide tile is
    /// matrix `l` of the pair, so each pair's `infos` slots stay
    /// contiguous. The per-lane value computation is the 4-lane
    /// kernel's exactly, so the factors (and breakdown columns) are
    /// bit-identical to the narrow path — and therefore to `potf2`.
    ///
    /// # Safety
    /// AVX2+FMA+AVX-512F detected; `src`/`dst` hold `2·pairs`
    /// interleaved 4-lane groups of order `n`, `tile` holds n·n·8
    /// elements, and `infos` holds 8 entries per pair.
    #[target_feature(enable = "avx2,fma,avx512f")]
    unsafe fn potrf_group_f64_w8(
        n: usize,
        pairs: usize,
        src: &[f64],
        dst: &mut [f64],
        tile: &mut [f64],
        infos: &mut [i32],
    ) {
        // SAFETY: fn contract — each pair consumes 8·n² source and
        // destination elements plus 8 info slots, in bounds by the
        // extent contract; the callees' contracts are met by
        // construction.
        unsafe {
            let gsz = n * n * 4;
            for h in 0..pairs {
                pack_pair_f64_w8(n, &src[h * 2 * gsz..], tile);
                potrf8_f64(tile, n, &mut infos[h * 8..]);
                unpack_pair_f64_w8(n, tile, &mut dst[h * 2 * gsz..]);
            }
        }
    }

    /// # Safety
    /// As [`pack_group_f64`].
    #[target_feature(enable = "avx2")]
    unsafe fn pack_group_f32(n: usize, srcs: &[f32], buf: &mut [f32], lower: bool) {
        // SAFETY: fn contract — `srcs` holds 8 n×n matrices and `buf` one
        // interleaved group (8·n·n); lane bases `l·n² + j·n` and 8-wide row
        // accesses at `i ≤ n−8` (scalar tail below n) stay in bounds.
        unsafe {
            let s = srcs.as_ptr();
            let o = buf.as_mut_ptr();
            let mm = n * n;
            for j in 0..n {
                let mut cols = [core::ptr::null::<f32>(); 8];
                for (l, c) in cols.iter_mut().enumerate() {
                    *c = s.add(l * mm + j * n);
                }
                let ob = o.add(j * n * 8);
                let mut i = if lower { j & !7 } else { 0 };
                while i + 8 <= n {
                    let mut v = [_mm256_setzero_ps(); 8];
                    for (l, c) in cols.iter().enumerate() {
                        v[l] = _mm256_loadu_ps(c.add(i));
                    }
                    let r = tr8(v);
                    for (k, rv) in r.iter().enumerate() {
                        _mm256_storeu_ps(ob.add((i + k) * 8), *rv);
                    }
                    i += 8;
                }
                while i < n {
                    for (l, c) in cols.iter().enumerate() {
                        *ob.add(i * 8 + l) = *c.add(i);
                    }
                    i += 1;
                }
            }
        }
    }

    /// # Safety
    /// As [`pack_group_f64`].
    #[target_feature(enable = "avx2")]
    unsafe fn unpack_group_f32(n: usize, buf: &[f32], dsts: &mut [f32], lower: bool) {
        // SAFETY: fn contract — mirror of `pack_group_f32` with loads and
        // stores exchanged; same extent argument.
        unsafe {
            let b = buf.as_ptr();
            let d = dsts.as_mut_ptr();
            let mm = n * n;
            for j in 0..n {
                let mut cols = [core::ptr::null_mut::<f32>(); 8];
                for (l, c) in cols.iter_mut().enumerate() {
                    *c = d.add(l * mm + j * n);
                }
                let ib = b.add(j * n * 8);
                let mut i = if lower { j & !7 } else { 0 };
                while i + 8 <= n {
                    let mut v = [_mm256_setzero_ps(); 8];
                    for (k, vv) in v.iter_mut().enumerate() {
                        *vv = _mm256_loadu_ps(ib.add((i + k) * 8));
                    }
                    let r = tr8(v);
                    for (l, c) in cols.iter().enumerate() {
                        _mm256_storeu_ps(c.add(i), r[l]);
                    }
                    i += 8;
                }
                while i < n {
                    for (l, c) in cols.iter().enumerate() {
                        *c.add(i) = *ib.add(i * 8 + l);
                    }
                    i += 1;
                }
            }
        }
    }

    fn cast<T: Scalar, U: 'static>(s: &[T]) -> &[U] {
        debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<U>(), "cast: type mismatch");
        // Safety: caller matched the TypeIds; identical layout.
        unsafe { core::slice::from_raw_parts(s.as_ptr().cast::<U>(), s.len()) }
    }

    fn cast_mut<T: Scalar, U: 'static>(s: &mut [T]) -> &mut [U] {
        debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<U>(), "cast: type mismatch");
        // Safety: caller matched the TypeIds; identical layout.
        unsafe { core::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<U>(), s.len()) }
    }

    fn scalar_as<T: Scalar, U: Copy + 'static>(v: T) -> U {
        debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<U>(), "cast: type mismatch");
        // Safety: caller matched the TypeIds; identical layout.
        unsafe { *core::ptr::from_ref(&v).cast::<U>() }
    }

    /// Generates the four lane kernels for one precision. Masks are
    /// full-width all-ones/all-zero vectors (`blendv` keys on the sign
    /// bit, which all-ones sets); live-lane masks are rebuilt per
    /// column from lane state, `w != 0` masks come from an unordered
    /// `NEQ` compare (matching Rust's `!=` on NaN).
    macro_rules! lane_kernels {
        (
            $ty:ty, $lanes:expr, $vec:ty,
            $loadu:ident, $storeu:ident, $set1:ident, $setzero:ident,
            $add:ident, $sub:ident, $mul:ident, $div:ident, $sqrt:ident,
            $fmadd:ident, $blendv:ident, $and:ident, $andnot:ident, $xor:ident,
            $cmp:ident, $movemask:ident,
            $potrf:ident, $gemm:ident, $syrk:ident, $trsm:ident,
            $pack:ident, $unpack:ident, $fused:ident
        ) => {
            /// Pack → factor → unpack for one full uniform group in a
            /// single `target_feature` region: one dispatch per group
            /// and the three stages inline together, which is what
            /// keeps the per-group overhead below the factorization
            /// cost at the smallest orders. Only the block-aligned
            /// lower triangle moves — the factorization never reads
            /// above the diagonal, and `dst` keeps its own strict
            /// upper triangle (potf2's in-place behavior).
            ///
            /// # Safety
            /// As the potrf kernel.
            #[target_feature(enable = "avx2,fma")]
            unsafe fn $fused(
                n: usize,
                groups: usize,
                src: &[$ty],
                dst: &mut [$ty],
                tile: &mut [$ty],
                ns: &[usize],
                infos: &mut [i32],
            ) {
                // SAFETY: fn contract — the dispatching wrapper sized `src`/`dst`
                // as `groups` interleaved groups, `tile` as one group and `infos`
                // as one lane-set per group, so the per-group slices handed to the
                // pack/factor/unpack callees satisfy their extent contracts.
                unsafe {
                    let gsz = n * n * $lanes;
                    for g in 0..groups {
                        $pack(n, &src[g * gsz..], tile, true);
                        $potrf(tile, n, ns, &mut infos[g * $lanes..]);
                        $unpack(n, tile, &mut dst[g * gsz..], true);
                    }
                }
            }
            /// # Safety
            /// Caller must have verified AVX2+FMA support; buffer
            /// extents checked by the dispatching wrapper.
            #[target_feature(enable = "avx2,fma")]
            unsafe fn $potrf(buf: &mut [$ty], m: usize, ns: &[usize], infos: &mut [i32]) {
                // SAFETY: fn contract — `buf` holds one interleaved m×m group
                // (m·m·L elements), so every `at(i, j)` offset with i, j < m is an
                // in-bounds L-wide access; `infos` holds one lane-set and `ns` at
                // most L entries, bounds-checked where indexed.
                unsafe {
                    const L: usize = $lanes;
                    // All-lanes movemask: when a mask is FULL a blendv keyed
                    // on it returns its second operand unchanged, so the
                    // specialized no-blend loops below stay bit-identical.
                    const FULL: i32 = (1 << L) - 1;
                    // Stash for negated column multipliers at small orders
                    // (the one-time zero-init is a dozen stores).
                    const NWS: usize = 16;
                    let mut nws = [$setzero(); NWS];
                    let p = buf.as_mut_ptr();
                    let at = |i: usize, j: usize| (j * m + i) * L;
                    let zero = $setzero();
                    let neg0 = $set1(-0.0);
                    let inf = $set1(<$ty>::INFINITY);
                    let mut broken = [false; L];
                    let mut live = [0.0 as $ty; L];
                    // Columns at which a lane runs out of order (`j == ns[l]`)
                    // — the only place besides breakdown where the live mask
                    // changes, so it is rebuilt only there. Column indices
                    // above 63 always rebuild (never hit: the driver cutoff
                    // is far below).
                    let mut ends = if m < 64 { 0u64 } else { !0u64 };
                    if m < 64 {
                        for &n in ns {
                            ends |= 1u64 << n.min(63);
                        }
                    }
                    let rebuild = |live: &mut [$ty; L], broken: &[bool; L], j: usize| {
                        for (l, lv) in live.iter_mut().enumerate() {
                            let alive = l < ns.len() && !broken[l] && j < ns[l];
                            *lv = if alive { <$ty>::from_bits(!0) } else { 0.0 };
                        }
                    };
                    rebuild(&mut live, &broken, 0);
                    let mut lm = $loadu(live.as_ptr());
                    for j in 0..m {
                        if j > 0 && ends & (1u64 << j.min(63)) != 0 {
                            rebuild(&mut live, &broken, j);
                            lm = $loadu(live.as_ptr());
                        }
                        let mut lmk = $movemask(lm);
                        if lmk == 0 {
                            break;
                        }
                        // ajj ← a(j,j) − Σ a(j,t)² — sequential mul-then-sub,
                        // the scalar tier's rounding sequence (no fused op).
                        // The same loads are the row's multipliers, so the
                        // fast path's nonzero test (and, at small orders,
                        // its negated-multiplier stash) rides along here
                        // instead of re-reading the row.
                        let mut ajj = $loadu(p.add(at(j, j)));
                        let mut nz = lm;
                        if m <= NWS {
                            for t in 0..j {
                                let v = $loadu(p.add(at(j, t)));
                                ajj = $sub(ajj, $mul(v, v));
                                nz = $and(nz, $cmp::<_CMP_NEQ_UQ>(v, zero));
                                nws[t] = $xor(v, neg0);
                            }
                        } else {
                            for t in 0..j {
                                let v = $loadu(p.add(at(j, t)));
                                ajj = $sub(ajj, $mul(v, v));
                                nz = $and(nz, $cmp::<_CMP_NEQ_UQ>(v, zero));
                            }
                        }
                        // Same predicate as the scalar tier's
                        // `ajj <= 0 || !ajj.is_finite()`: positive AND below
                        // +∞ (NaN fails both ordered compares).
                        let ok = $and($cmp::<_CMP_GT_OQ>(ajj, zero), $cmp::<_CMP_LT_OQ>(ajj, inf));
                        let dead = $movemask($andnot(ok, lm));
                        if dead != 0 {
                            // Slow path: record breakdowns, freeze lanes.
                            for (l, b) in broken.iter_mut().enumerate() {
                                if dead & (1 << l) != 0 {
                                    infos[l] = (j + 1) as i32;
                                    *b = true;
                                }
                            }
                            lm = $and(lm, ok);
                            $storeu(live.as_mut_ptr(), lm);
                            lmk = $movemask(lm);
                        }
                        if lmk == 0 {
                            continue;
                        }
                        let piv = $sqrt(ajj);
                        if lmk == FULL {
                            $storeu(p.add(at(j, j)), piv);
                        } else {
                            let old = $loadu(p.add(at(j, j)));
                            $storeu(p.add(at(j, j)), $blendv(old, piv, lm));
                        }
                        if j + 1 == m {
                            continue;
                        }
                        // Fast path: every lane live and every multiplier
                        // a(j,t) nonzero in every lane — the steady state
                        // for full SPD groups. Swapping to i-outer,
                        // t-inner register accumulation (divide fused in)
                        // keeps each element's operation sequence — and so
                        // its rounding — exactly that of the scalar tier,
                        // while touching the trailing column once instead
                        // of j+1 times. Small orders stash the negated
                        // multipliers during the nonzero pre-pass; larger
                        // ones amortize the reload over 4-row blocks.
                        let fast = lmk == FULL && $movemask(nz) == FULL;
                        if fast && m < 12 {
                            // Tiny orders: a single accumulator per row —
                            // the 4-row blocking below costs more in code
                            // than it saves in loads at this size.
                            for i in (j + 1)..m {
                                let mut acc = $loadu(p.add(at(i, j)));
                                for t in 0..j {
                                    acc = $fmadd(nws[t], $loadu(p.add(at(i, t))), acc);
                                }
                                $storeu(p.add(at(i, j)), $div(acc, piv));
                            }
                            continue;
                        }
                        if fast && m <= NWS {
                            let mut i = j + 1;
                            while i + 4 <= m {
                                let mut a0 = $loadu(p.add(at(i, j)));
                                let mut a1 = $loadu(p.add(at(i + 1, j)));
                                let mut a2 = $loadu(p.add(at(i + 2, j)));
                                let mut a3 = $loadu(p.add(at(i + 3, j)));
                                for t in 0..j {
                                    let nw = nws[t];
                                    a0 = $fmadd(nw, $loadu(p.add(at(i, t))), a0);
                                    a1 = $fmadd(nw, $loadu(p.add(at(i + 1, t))), a1);
                                    a2 = $fmadd(nw, $loadu(p.add(at(i + 2, t))), a2);
                                    a3 = $fmadd(nw, $loadu(p.add(at(i + 3, t))), a3);
                                }
                                $storeu(p.add(at(i, j)), $div(a0, piv));
                                $storeu(p.add(at(i + 1, j)), $div(a1, piv));
                                $storeu(p.add(at(i + 2, j)), $div(a2, piv));
                                $storeu(p.add(at(i + 3, j)), $div(a3, piv));
                                i += 4;
                            }
                            while i < m {
                                let mut acc = $loadu(p.add(at(i, j)));
                                for t in 0..j {
                                    acc = $fmadd(nws[t], $loadu(p.add(at(i, t))), acc);
                                }
                                $storeu(p.add(at(i, j)), $div(acc, piv));
                                i += 1;
                            }
                            continue;
                        }
                        if fast {
                            let mut i = j + 1;
                            while i + 4 <= m {
                                let mut a0 = $loadu(p.add(at(i, j)));
                                let mut a1 = $loadu(p.add(at(i + 1, j)));
                                let mut a2 = $loadu(p.add(at(i + 2, j)));
                                let mut a3 = $loadu(p.add(at(i + 3, j)));
                                for t in 0..j {
                                    let nw = $xor($loadu(p.add(at(j, t))), neg0);
                                    a0 = $fmadd(nw, $loadu(p.add(at(i, t))), a0);
                                    a1 = $fmadd(nw, $loadu(p.add(at(i + 1, t))), a1);
                                    a2 = $fmadd(nw, $loadu(p.add(at(i + 2, t))), a2);
                                    a3 = $fmadd(nw, $loadu(p.add(at(i + 3, t))), a3);
                                }
                                $storeu(p.add(at(i, j)), $div(a0, piv));
                                $storeu(p.add(at(i + 1, j)), $div(a1, piv));
                                $storeu(p.add(at(i + 2, j)), $div(a2, piv));
                                $storeu(p.add(at(i + 3, j)), $div(a3, piv));
                                i += 4;
                            }
                            while i < m {
                                let mut acc = $loadu(p.add(at(i, j)));
                                for t in 0..j {
                                    let nw = $xor($loadu(p.add(at(j, t))), neg0);
                                    acc = $fmadd(nw, $loadu(p.add(at(i, t))), acc);
                                }
                                $storeu(p.add(at(i, j)), $div(acc, piv));
                                i += 1;
                            }
                            continue;
                        }
                        for t in 0..j {
                            let w = $loadu(p.add(at(j, t)));
                            let wm = $and(lm, $cmp::<_CMP_NEQ_UQ>(w, zero));
                            let mk = $movemask(wm);
                            if mk == 0 {
                                continue;
                            }
                            let nw = $xor(w, neg0);
                            if mk == FULL {
                                for i in (j + 1)..m {
                                    let cv = $loadu(p.add(at(i, j)));
                                    let av = $loadu(p.add(at(i, t)));
                                    $storeu(p.add(at(i, j)), $fmadd(nw, av, cv));
                                }
                            } else {
                                for i in (j + 1)..m {
                                    let cv = $loadu(p.add(at(i, j)));
                                    let av = $loadu(p.add(at(i, t)));
                                    let r = $fmadd(nw, av, cv);
                                    $storeu(p.add(at(i, j)), $blendv(cv, r, wm));
                                }
                            }
                        }
                        if lmk == FULL {
                            for i in (j + 1)..m {
                                let cv = $loadu(p.add(at(i, j)));
                                $storeu(p.add(at(i, j)), $div(cv, piv));
                            }
                        } else {
                            for i in (j + 1)..m {
                                let cv = $loadu(p.add(at(i, j)));
                                let r = $div(cv, piv);
                                $storeu(p.add(at(i, j)), $blendv(cv, r, lm));
                            }
                        }
                    }
                }
            }

            /// # Safety
            /// As the potrf kernel.
            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = "avx2,fma")]
            unsafe fn $gemm(
                m: usize,
                n: usize,
                k: usize,
                alpha: $ty,
                a: &[$ty],
                b: &[$ty],
                beta: $ty,
                c: &mut [$ty],
            ) {
                // SAFETY: fn contract — `a`, `b`, `c` are interleaved m×k, k×n,
                // m×n groups, so each `(col·rows + row)·L` offset below is an
                // in-bounds L-wide access.
                unsafe {
                    const L: usize = $lanes;
                    let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
                    let zero = $setzero();
                    let alv = $set1(alpha);
                    let bev = $set1(beta);
                    for j in 0..n {
                        if beta == 0.0 {
                            for i in 0..m {
                                $storeu(cp.add((j * m + i) * L), zero);
                            }
                        } else if beta != 1.0 {
                            for i in 0..m {
                                let v = $loadu(cp.add((j * m + i) * L));
                                $storeu(cp.add((j * m + i) * L), $mul(v, bev));
                            }
                        }
                        if alpha == 0.0 {
                            continue;
                        }
                        for t in 0..k {
                            let w = $mul(alv, $loadu(bp.add((t * n + j) * L)));
                            let wm = $cmp::<_CMP_NEQ_UQ>(w, zero);
                            if $movemask(wm) == 0 {
                                continue;
                            }
                            for i in 0..m {
                                let cv = $loadu(cp.add((j * m + i) * L));
                                let av = $loadu(ap.add((t * m + i) * L));
                                let r = $fmadd(w, av, cv);
                                $storeu(cp.add((j * m + i) * L), $blendv(cv, r, wm));
                            }
                        }
                    }
                }
            }

            /// # Safety
            /// As the potrf kernel.
            #[target_feature(enable = "avx2,fma")]
            unsafe fn $syrk(n: usize, k: usize, alpha: $ty, a: &[$ty], beta: $ty, c: &mut [$ty]) {
                // SAFETY: fn contract — `a` is an interleaved n×k group and `c` an
                // n×n group; all offsets `(j·n + i)·L` with i, j < n (and `(t·n +
                // j)·L` with t < k) are in-bounds L-wide accesses.
                unsafe {
                    const L: usize = $lanes;
                    let (ap, cp) = (a.as_ptr(), c.as_mut_ptr());
                    let zero = $setzero();
                    let alv = $set1(alpha);
                    let bev = $set1(beta);
                    for j in 0..n {
                        if beta == 0.0 {
                            for i in j..n {
                                $storeu(cp.add((j * n + i) * L), zero);
                            }
                        } else if beta != 1.0 {
                            for i in j..n {
                                let v = $loadu(cp.add((j * n + i) * L));
                                $storeu(cp.add((j * n + i) * L), $mul(v, bev));
                            }
                        }
                    }
                    if alpha == 0.0 || k == 0 {
                        return;
                    }
                    for t in 0..k {
                        for j in 0..n {
                            let w = $mul(alv, $loadu(ap.add((t * n + j) * L)));
                            let wm = $cmp::<_CMP_NEQ_UQ>(w, zero);
                            if $movemask(wm) == 0 {
                                continue;
                            }
                            for i in j..n {
                                let cv = $loadu(cp.add((j * n + i) * L));
                                let av = $loadu(ap.add((t * n + i) * L));
                                let r = $fmadd(w, av, cv);
                                $storeu(cp.add((j * n + i) * L), $blendv(cv, r, wm));
                            }
                        }
                    }
                }
            }

            /// # Safety
            /// As the potrf kernel.
            #[target_feature(enable = "avx2,fma")]
            unsafe fn $trsm(m: usize, n: usize, a: &[$ty], b: &mut [$ty]) {
                // SAFETY: fn contract — `a` is an interleaved n×n group and `b` an
                // m×n group; offsets `(j·n + j)·L` and `(j·m + i)·L` with the loop
                // bounds below are in-bounds L-wide accesses.
                unsafe {
                    const L: usize = $lanes;
                    let (ap, bp) = (a.as_ptr(), b.as_mut_ptr());
                    let zero = $setzero();
                    let neg0 = $set1(-0.0);
                    for j in 0..n {
                        for t in 0..j {
                            let w = $loadu(ap.add((t * n + j) * L));
                            let wm = $cmp::<_CMP_NEQ_UQ>(w, zero);
                            if $movemask(wm) == 0 {
                                continue;
                            }
                            let nw = $xor(w, neg0);
                            for i in 0..m {
                                let cv = $loadu(bp.add((j * m + i) * L));
                                let av = $loadu(bp.add((t * m + i) * L));
                                let r = $fmadd(nw, av, cv);
                                $storeu(bp.add((j * m + i) * L), $blendv(cv, r, wm));
                            }
                        }
                        let ajj = $loadu(ap.add((j * n + j) * L));
                        for i in 0..m {
                            let cv = $loadu(bp.add((j * m + i) * L));
                            $storeu(bp.add((j * m + i) * L), $div(cv, ajj));
                        }
                    }
                }
            }
        };
    }

    lane_kernels!(
        f64,
        4,
        __m256d,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        _mm256_set1_pd,
        _mm256_setzero_pd,
        _mm256_add_pd,
        _mm256_sub_pd,
        _mm256_mul_pd,
        _mm256_div_pd,
        _mm256_sqrt_pd,
        _mm256_fmadd_pd,
        _mm256_blendv_pd,
        _mm256_and_pd,
        _mm256_andnot_pd,
        _mm256_xor_pd,
        _mm256_cmp_pd,
        _mm256_movemask_pd,
        potrf_f64,
        gemm_nt_f64,
        syrk_ln_f64,
        trsm_rlt_f64,
        pack_group_f64,
        unpack_group_f64,
        potrf_group_f64
    );

    lane_kernels!(
        f32,
        8,
        __m256,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_set1_ps,
        _mm256_setzero_ps,
        _mm256_add_ps,
        _mm256_sub_ps,
        _mm256_mul_ps,
        _mm256_div_ps,
        _mm256_sqrt_ps,
        _mm256_fmadd_ps,
        _mm256_blendv_ps,
        _mm256_and_ps,
        _mm256_andnot_ps,
        _mm256_xor_ps,
        _mm256_cmp_ps,
        _mm256_movemask_ps,
        potrf_f32,
        gemm_nt_f32,
        syrk_ln_f32,
        trsm_rlt_f32,
        pack_group_f32,
        unpack_group_f32,
        potrf_group_f32
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{seeded_rng, spd_vec};
    use crate::{potf2, Uplo};

    fn pack_square<T: Scalar>(m: usize, mats: &[Vec<T>], sizes: &[usize]) -> Vec<T> {
        let lanes = lane_count::<T>();
        let mut buf = vec![T::ZERO; interleaved_len(m, m, lanes)];
        let refs: Vec<MatRef<'_, T>> = mats
            .iter()
            .zip(sizes)
            .map(|(v, &n)| MatRef::from_slice(v, n, n, n))
            .collect();
        pack_lanes(m, m, &refs, &mut buf);
        buf
    }

    #[test]
    fn roundtrip_mixed_sizes_partial_group() {
        let mut rng = seeded_rng(42);
        let sizes = [5usize, 3, 7]; // fewer lanes than L, mixed sizes
        let m = 7;
        let mats: Vec<Vec<f64>> = sizes.iter().map(|&n| spd_vec(&mut rng, n)).collect();
        let buf = pack_square(m, &mats, &sizes);
        for (l, (&n, orig)) in sizes.iter().zip(&mats).enumerate() {
            let mut out = vec![0.0f64; n * n];
            unpack_lane(&buf, m, l, MatMut::from_slice(&mut out, n, n, n));
            assert_eq!(&out, orig, "lane {l}");
        }
        // Absent lanes and padding are zero.
        let mut pad = vec![1.0f64; m * m];
        unpack_lane(&buf, m, 3, MatMut::from_slice(&mut pad, m, m, m));
        assert!(pad.iter().all(|&v| v == 0.0));
    }

    fn group_pack_roundtrip<T: Scalar>() {
        let mut rng = seeded_rng(23);
        let lanes = lane_count::<T>();
        // 1..=10 covers the transpose remainder lanes (n mod L ≠ 0) on
        // both precisions as well as full-vector columns.
        for n in 1usize..=10 {
            let flat: Vec<T> = crate::gen::rand_mat(&mut rng, n * n * lanes);
            let mut got = vec![T::ZERO; interleaved_len(n, n, lanes)];
            pack_group(n, &flat, &mut got);
            // Oracle: the general per-lane pack on the same matrices.
            let mats: Vec<Vec<T>> = flat.chunks_exact(n * n).map(<[T]>::to_vec).collect();
            let sizes = vec![n; lanes];
            let want = pack_square(n, &mats, &sizes);
            let bits = |v: T| v.to_f64().to_bits();
            assert!(
                got.iter().zip(&want).all(|(&a, &b)| bits(a) == bits(b)),
                "pack_group != pack_lanes at n = {n}"
            );
            let mut back = vec![T::ZERO; n * n * lanes];
            unpack_group(n, &got, &mut back);
            assert!(
                back.iter().zip(&flat).all(|(&a, &b)| bits(a) == bits(b)),
                "unpack_group roundtrip failed at n = {n}"
            );
        }
    }

    #[test]
    fn group_pack_matches_general_pack_and_roundtrips() {
        group_pack_roundtrip::<f64>();
        group_pack_roundtrip::<f32>();
    }

    fn fused_group_matches_staged<T: Scalar>() {
        let mut rng = seeded_rng(29);
        let lanes = lane_count::<T>();
        for n in 1usize..=12 {
            let mut flat = Vec::with_capacity(n * n * lanes);
            for _ in 0..lanes {
                flat.extend_from_slice(&spd_vec::<T>(&mut rng, n));
            }
            if n >= 3 {
                // Poison one lane's diagonal: breakdown info codes and
                // frozen partial factors must match the staged path too.
                flat[n * n + 2 * n + 2] = T::from_f64(-1.0);
            }
            if n >= 2 {
                // Zero one lane's (1, 0) entry: an exactly-zero
                // multiplier, which the in-register n = 4 kernel must
                // bail on (the scalar tier skips zero-w updates, so a
                // straight fmadd could differ in rounding).
                flat[2 * n * n + 1] = T::ZERO;
            }
            let mut tile = vec![T::ZERO; interleaved_len(n, n, lanes)];
            // Pre-filled with the source: the strict upper triangle is
            // unspecified otherwise (the AVX2 path moves only the
            // lower triangle).
            let mut dst = flat.clone();
            let mut infos = vec![0i32; lanes];
            potrf_group(n, &flat, &mut dst, &mut tile, &mut infos);

            let mats: Vec<Vec<T>> = flat.chunks_exact(n * n).map(<[T]>::to_vec).collect();
            let sizes = vec![n; lanes];
            let mut want_buf = pack_square(n, &mats, &sizes);
            let mut want_infos = vec![0i32; lanes];
            potrf_lanes(&mut want_buf, n, &sizes, &mut want_infos);
            assert_eq!(infos, want_infos, "info mismatch at n = {n}");
            for l in 0..lanes {
                let mut want = vec![T::ZERO; n * n];
                unpack_lane(&want_buf, n, l, MatMut::from_slice(&mut want, n, n, n));
                let got = &dst[l * n * n..(l + 1) * n * n];
                assert!(
                    got.iter()
                        .zip(&want)
                        .all(|(a, b)| a.to_f64().to_bits() == b.to_f64().to_bits()),
                    "lane {l} diverged at n = {n}"
                );
            }
        }
    }

    #[test]
    fn fused_group_factor_matches_staged_path() {
        fused_group_matches_staged::<f64>();
        fused_group_matches_staged::<f32>();
    }

    /// Multi-group sweeps with a full-width tile ([`group_tile_len`]):
    /// on AVX-512F hosts the `f64` path fuses group pairs into 8-lane
    /// sweeps (odd tails through the 4-lane path); everywhere else the
    /// same call re-checks the narrow path. Either way every lane must
    /// stay bit-identical to the staged per-group oracle — breakdown
    /// lanes, exactly-zero multipliers and non-multiple-of-4 orders
    /// included.
    fn wide_group_matches_staged<T: Scalar>() {
        let mut rng = seeded_rng(31);
        let lanes = lane_count::<T>();
        for n in [1usize, 2, 3, 4, 5, 6, 8, 11, 13, 16, 24] {
            for groups in [1usize, 2, 3, 5] {
                let mut flat = Vec::with_capacity(groups * n * n * lanes);
                for _ in 0..groups * lanes {
                    flat.extend_from_slice(&spd_vec::<T>(&mut rng, n));
                }
                if n >= 3 && groups >= 2 {
                    // Poison a diagonal in the second group — the high
                    // lanes of a fused pair — so per-lane breakdown
                    // freezing is exercised across the pair boundary.
                    let g1 = n * n * lanes;
                    flat[g1 + n * n + 2 * n + 2] = T::from_f64(-1.0);
                }
                if n >= 2 {
                    // Exactly-zero multiplier in the first group (the
                    // scalar tier skips zero-w column updates).
                    flat[1] = T::ZERO;
                }
                let mut tile = vec![T::ZERO; group_tile_len(n)];
                let mut dst = flat.clone();
                let mut infos = vec![0i32; groups * lanes];
                potrf_group(n, &flat, &mut dst, &mut tile, &mut infos);

                let sizes = vec![n; lanes];
                for g in 0..groups {
                    let gsz = n * n * lanes;
                    let gmats: Vec<Vec<T>> = flat[g * gsz..(g + 1) * gsz]
                        .chunks_exact(n * n)
                        .map(<[T]>::to_vec)
                        .collect();
                    let mut want_buf = pack_square(n, &gmats, &sizes);
                    let mut want_infos = vec![0i32; lanes];
                    potrf_lanes(&mut want_buf, n, &sizes, &mut want_infos);
                    assert_eq!(
                        &infos[g * lanes..(g + 1) * lanes],
                        &want_infos[..],
                        "info mismatch at n = {n}, group {g} of {groups}"
                    );
                    for l in 0..lanes {
                        let mut want = vec![T::ZERO; n * n];
                        unpack_lane(&want_buf, n, l, MatMut::from_slice(&mut want, n, n, n));
                        let got = &dst[(g * lanes + l) * n * n..(g * lanes + l + 1) * n * n];
                        assert!(
                            got.iter()
                                .zip(&want)
                                .all(|(a, b)| a.to_f64().to_bits() == b.to_f64().to_bits()),
                            "lane {l} diverged at n = {n}, group {g} of {groups}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wide_tile_group_factor_matches_staged_path() {
        wide_group_matches_staged::<f64>();
        wide_group_matches_staged::<f32>();
    }

    #[test]
    fn potrf_lanes_matches_scalar_potf2_f64() {
        let mut rng = seeded_rng(7);
        let sizes = [4usize, 8, 1, 6];
        let m = 8;
        let mats: Vec<Vec<f64>> = sizes.iter().map(|&n| spd_vec(&mut rng, n)).collect();
        let mut buf = pack_square(m, &mats, &sizes);
        let mut infos = [0i32; 4];
        potrf_lanes(&mut buf, m, &sizes, &mut infos);
        assert_eq!(infos, [0; 4]);
        for (l, (&n, orig)) in sizes.iter().zip(&mats).enumerate() {
            let mut want = orig.clone();
            potf2(Uplo::Lower, MatMut::from_slice(&mut want, n, n, n)).unwrap();
            let mut got = vec![0.0f64; n * n];
            unpack_lane(&buf, m, l, MatMut::from_slice(&mut got, n, n, n));
            let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "lane {l} not bit-identical");
        }
    }

    #[test]
    fn potrf_lanes_dispatch_equals_portable() {
        // On AVX2 hosts this pins vector == portable; elsewhere both run
        // the portable path, which the scalar-oracle tests cover.
        let mut rng = seeded_rng(11);
        for &m in &[1usize, 2, 5, 16, 32] {
            let sizes: Vec<usize> = (0..lane_count::<f64>())
                .map(|l| 1 + (m + l) % m.max(1))
                .collect();
            let mats: Vec<Vec<f64>> = sizes.iter().map(|&n| spd_vec(&mut rng, n)).collect();
            let mut a = pack_square(m, &mats, &sizes);
            let mut b = a.clone();
            let mut ia = vec![0i32; sizes.len()];
            let mut ib = vec![0i32; sizes.len()];
            potrf_lanes(&mut a, m, &sizes, &mut ia);
            potrf_lanes_portable(&mut b, m, &sizes, &mut ib);
            assert_eq!(ia, ib);
            let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb, "m={m}");
        }
    }

    #[test]
    fn breakdown_is_per_lane_and_freezes_state() {
        let mut rng = seeded_rng(3);
        let n = 6;
        let good = spd_vec::<f64>(&mut rng, n);
        let mut bad = spd_vec::<f64>(&mut rng, n);
        bad[3 + 3 * n] = -100.0; // breaks at column 3 (info 4)
        let sizes = [n, n, n];
        let mats = vec![good.clone(), bad.clone(), good.clone()];
        let mut buf = pack_square(n, &mats, &sizes);
        let mut infos = [0i32; 3];
        potrf_lanes(&mut buf, n, &sizes, &mut infos);

        let mut want_bad = bad.clone();
        let err = potf2(Uplo::Lower, MatMut::from_slice(&mut want_bad, n, n, n)).unwrap_err();
        assert_eq!(infos, [0, err.info() as i32, 0]);

        // Broken lane carries exactly the scalar tier's partial state…
        let mut got_bad = vec![0.0f64; n * n];
        unpack_lane(&buf, n, 1, MatMut::from_slice(&mut got_bad, n, n, n));
        assert_eq!(got_bad, want_bad);
        // …and the healthy lane-mates are bit-identical to scalar.
        let mut want_good = good.clone();
        potf2(Uplo::Lower, MatMut::from_slice(&mut want_good, n, n, n)).unwrap();
        for l in [0usize, 2] {
            let mut got = vec![0.0f64; n * n];
            unpack_lane(&buf, n, l, MatMut::from_slice(&mut got, n, n, n));
            assert_eq!(got, want_good, "lane {l} poisoned by lane 1");
        }
    }

    #[test]
    fn potrf_lanes_f32_full_group() {
        let mut rng = seeded_rng(9);
        let lanes = lane_count::<f32>();
        assert_eq!(lanes, 8);
        let sizes: Vec<usize> = (0..lanes).map(|l| 2 + l).collect();
        let m = 9;
        let mats: Vec<Vec<f32>> = sizes.iter().map(|&n| spd_vec(&mut rng, n)).collect();
        let mut buf = pack_square(m, &mats, &sizes);
        let mut infos = vec![0i32; lanes];
        potrf_lanes(&mut buf, m, &sizes, &mut infos);
        assert_eq!(infos, vec![0; lanes]);
        for (l, (&n, orig)) in sizes.iter().zip(&mats).enumerate() {
            let mut want = orig.clone();
            potf2(Uplo::Lower, MatMut::from_slice(&mut want, n, n, n)).unwrap();
            let mut got = vec![0.0f32; n * n];
            unpack_lane(&buf, m, l, MatMut::from_slice(&mut got, n, n, n));
            let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, wb, "lane {l} not bit-identical");
        }
    }

    #[test]
    fn lane_blas_kernels_match_dispatch() {
        use crate::gen::rand_mat;
        let mut rng = seeded_rng(21);
        let lanes = lane_count::<f64>();
        let (m, n, k) = (6usize, 5usize, 4usize);
        let a = rand_mat::<f64>(&mut rng, interleaved_len(m, k, lanes));
        let b = rand_mat::<f64>(&mut rng, interleaved_len(n, k, lanes));
        let c0 = rand_mat::<f64>(&mut rng, interleaved_len(m, n, lanes));
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm_nt_lanes(m, n, k, 1.5, &a, &b, -0.5, &mut c1);
        gemm_nt_lanes_portable(m, n, k, 1.5, &a, &b, -0.5, &mut c2);
        assert_eq!(c1, c2);

        let sa = rand_mat::<f64>(&mut rng, interleaved_len(n, k, lanes));
        let s0 = rand_mat::<f64>(&mut rng, interleaved_len(n, n, lanes));
        let mut s1 = s0.clone();
        let mut s2 = s0.clone();
        syrk_ln_lanes(n, k, -1.0, &sa, 1.0, &mut s1);
        syrk_ln_lanes_portable(n, k, -1.0, &sa, 1.0, &mut s2);
        assert_eq!(s1, s2);

        let mut ta = rand_mat::<f64>(&mut rng, interleaved_len(n, n, lanes));
        for l in 0..lanes {
            for j in 0..n {
                let d = lane_index(n, lanes, j, j, l);
                ta[d] = 2.0 + ta[d].abs();
            }
        }
        let t0 = rand_mat::<f64>(&mut rng, interleaved_len(m, n, lanes));
        let mut t1 = t0.clone();
        let mut t2 = t0.clone();
        trsm_rlt_lanes(m, n, &ta, &mut t1);
        trsm_rlt_lanes_portable(m, n, &ta, &mut t2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn zero_order_lanes_are_noops() {
        let lanes = lane_count::<f64>();
        let m = 4;
        let mut buf = vec![0.0f64; interleaved_len(m, m, lanes)];
        let mut infos = [0i32; 2];
        potrf_lanes(&mut buf, m, &[0, 0], &mut infos);
        assert_eq!(infos, [0, 0]);
        assert!(buf.iter().all(|&v| v == 0.0));
        // Empty group entirely.
        potrf_lanes(&mut buf, 0, &[], &mut []);
    }
}
