//! Naive reference implementations used only for testing.
//!
//! Everything here trades speed for obviousness: triple loops over dense
//! `Vec`s with `ld == rows`. The optimized level-3 and factorization
//! kernels are validated against these in unit, property
//! and integration tests.

use crate::matrix::{Diag, Side, Trans, Uplo};
use crate::scalar::Scalar;

/// Reference `C = α·op(A)·op(B) + β·C` on packed column-major buffers
/// (`ld == rows`). Returns the result as a fresh vector.
#[allow(clippy::too_many_arguments)]
pub fn gemm_ref<T: Scalar>(
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: &[T],
    am: usize,
    an: usize,
    b: &[T],
    bm: usize,
    bn: usize,
    beta: T,
    c: &[T],
    m: usize,
    n: usize,
) -> Vec<T> {
    let k = if transa == Trans::NoTrans { an } else { am };
    let ga = |i: usize, j: usize| match transa {
        Trans::NoTrans => a[i + j * am],
        Trans::Trans => a[j + i * am],
    };
    let gb = |i: usize, j: usize| match transb {
        Trans::NoTrans => b[i + j * bm],
        Trans::Trans => b[j + i * bm],
    };
    let _ = (an, bn);
    let mut out = vec![T::ZERO; m * n];
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += ga(i, l) * gb(l, j);
            }
            let base = if beta == T::ZERO {
                T::ZERO
            } else {
                beta * c[i + j * m]
            };
            out[i + j * m] = base + alpha * acc;
        }
    }
    out
}

/// Reference symmetric rank-k update on packed buffers: returns `C` with
/// the `uplo` triangle replaced by `α·A·Aᵀ + β·C` (`NoTrans`; `A` is
/// `n × k`) or `α·Aᵀ·A + β·C` (`Trans`; `A` is `k × n`), other triangle
/// untouched.
#[allow(clippy::too_many_arguments)]
pub fn syrk_ref<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: &[T],
    n: usize,
    k: usize,
    beta: T,
    c: &[T],
) -> Vec<T> {
    let ga = |i: usize, l: usize| match trans {
        Trans::NoTrans => a[i + l * n],
        Trans::Trans => a[l + i * k],
    };
    let mut out = c.to_vec();
    for j in 0..n {
        for i in 0..n {
            let in_tri = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if !in_tri {
                continue;
            }
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += ga(i, l) * ga(j, l);
            }
            let base = if beta == T::ZERO {
                T::ZERO
            } else {
                beta * c[i + j * n]
            };
            out[i + j * n] = base + alpha * acc;
        }
    }
    out
}

/// Element of a packed triangular `na × na` matrix under `uplo`, `diag`
/// and `trans`: entries outside the referenced triangle read as zero and
/// a `Unit` diagonal reads as one, matching what the optimized kernels
/// may legally touch.
fn tri_get<T: Scalar>(
    a: &[T],
    na: usize,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    i: usize,
    j: usize,
) -> T {
    let (r, c) = match transa {
        Trans::NoTrans => (i, j),
        Trans::Trans => (j, i),
    };
    if r == c {
        return match diag {
            Diag::Unit => T::ONE,
            Diag::NonUnit => a[r + c * na],
        };
    }
    let stored = match uplo {
        Uplo::Lower => r > c,
        Uplo::Upper => r < c,
    };
    if stored {
        a[r + c * na]
    } else {
        T::ZERO
    }
}

/// Reference triangular multiply on packed buffers: returns
/// `α·op(tri(A))·B` (`Side::Left`) or `α·B·op(tri(A))` (`Side::Right`)
/// for `m × n` `B` and `na × na` `A` (`na` = `m` or `n` per side).
#[allow(clippy::too_many_arguments)]
pub fn trmm_ref<T: Scalar>(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: T,
    a: &[T],
    b: &[T],
    m: usize,
    n: usize,
) -> Vec<T> {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let mut out = vec![T::ZERO; m * n];
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            match side {
                Side::Left => {
                    for l in 0..m {
                        acc += tri_get(a, na, uplo, transa, diag, i, l) * b[l + j * m];
                    }
                }
                Side::Right => {
                    for l in 0..n {
                        acc += b[i + l * m] * tri_get(a, na, uplo, transa, diag, l, j);
                    }
                }
            }
            out[i + j * m] = alpha * acc;
        }
    }
    out
}

/// Reference triangular solve on packed buffers: returns `X` with
/// `op(tri(A))·X = α·B` (`Side::Left`) or `X·op(tri(A)) = α·B`
/// (`Side::Right`), by plain forward/backward substitution.
#[allow(clippy::too_many_arguments)]
pub fn trsm_ref<T: Scalar>(
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: T,
    a: &[T],
    b: &[T],
    m: usize,
    n: usize,
) -> Vec<T> {
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    let ga = |i: usize, j: usize| tri_get(a, na, uplo, transa, diag, i, j);
    let mut x: Vec<T> = b.iter().map(|&v| alpha * v).collect();
    match side {
        Side::Left => {
            // op(A) acts lower for Lower/NoTrans and Upper/Trans.
            let forward = matches!(
                (uplo, transa),
                (Uplo::Lower, Trans::NoTrans) | (Uplo::Upper, Trans::Trans)
            );
            let order: Vec<usize> = if forward {
                (0..m).collect()
            } else {
                (0..m).rev().collect()
            };
            for j in 0..n {
                for &i in &order {
                    let mut v = x[i + j * m];
                    for l in 0..m {
                        if l != i {
                            v -= ga(i, l) * x[l + j * m];
                        }
                    }
                    x[i + j * m] = v / ga(i, i);
                }
            }
        }
        Side::Right => {
            let forward = matches!(
                (uplo, transa),
                (Uplo::Upper, Trans::NoTrans) | (Uplo::Lower, Trans::Trans)
            );
            let order: Vec<usize> = if forward {
                (0..n).collect()
            } else {
                (0..n).rev().collect()
            };
            for &j in &order {
                for i in 0..m {
                    let mut v = x[i + j * m];
                    for l in 0..n {
                        if l != j {
                            v -= x[i + l * m] * ga(l, j);
                        }
                    }
                    x[i + j * m] = v / ga(j, j);
                }
            }
        }
    }
    x
}

/// Reference matrix–vector product `y = A·x` for packed column-major `A`.
pub fn matvec_ref<T: Scalar>(a: &[T], m: usize, n: usize, x: &[T]) -> Vec<T> {
    let mut y = vec![T::ZERO; m];
    for j in 0..n {
        for i in 0..m {
            y[i] += a[i + j * m] * x[j];
        }
    }
    y
}

/// Reconstructs `L·Lᵀ` from the lower triangle of a packed `n × n`
/// factored matrix (entries above the diagonal ignored).
pub fn llt_ref<T: Scalar>(l: &[T], n: usize, ld: usize) -> Vec<T> {
    let get = |i: usize, j: usize| if i >= j { l[i + j * ld] } else { T::ZERO };
    let mut out = vec![T::ZERO; n * n];
    for j in 0..n {
        for i in 0..n {
            let mut acc = T::ZERO;
            for p in 0..=i.min(j) {
                acc += get(i, p) * get(j, p);
            }
            out[i + j * n] = acc;
        }
    }
    out
}

/// Reconstructs `Uᵀ·U` from the upper triangle of a packed `n × n`
/// factored matrix.
pub fn utu_ref<T: Scalar>(u: &[T], n: usize, ld: usize) -> Vec<T> {
    let get = |i: usize, j: usize| if i <= j { u[i + j * ld] } else { T::ZERO };
    let mut out = vec![T::ZERO; n * n];
    for j in 0..n {
        for i in 0..n {
            let mut acc = T::ZERO;
            for p in 0..=i.min(j) {
                acc += get(p, i) * get(p, j);
            }
            out[i + j * n] = acc;
        }
    }
    out
}

/// Reconstructs `L·U` from a packed in-place LU factorization
/// (`L` unit-lower, `U` upper), `m × n`.
pub fn lu_ref<T: Scalar>(lu: &[T], m: usize, n: usize, ld: usize) -> Vec<T> {
    let k = m.min(n);
    let gl = |i: usize, j: usize| {
        if i == j {
            T::ONE
        } else if i > j {
            lu[i + j * ld]
        } else {
            T::ZERO
        }
    };
    let gu = |i: usize, j: usize| if i <= j { lu[i + j * ld] } else { T::ZERO };
    let mut out = vec![T::ZERO; m * n];
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            for p in 0..k.min(i + 1).min(j + 1) {
                acc += gl(i, p) * gu(p, j);
            }
            out[i + j * m] = acc;
        }
    }
    out
}

/// Applies the row permutation recorded by `getrf`-style pivots to a
/// packed matrix, producing `P·A` (forward order, as `laswp` would).
pub fn permute_rows_ref<T: Scalar>(a: &[T], m: usize, n: usize, ipiv: &[usize]) -> Vec<T> {
    let mut out = a.to_vec();
    for (i, &p) in ipiv.iter().enumerate() {
        if p != i {
            for j in 0..n {
                out.swap(i + j * m, p + j * m);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llt_of_identity() {
        let n = 3;
        let mut l = vec![0.0f64; 9];
        for i in 0..3 {
            l[i + i * 3] = 1.0;
        }
        let a = llt_ref(&l, n, n);
        for j in 0..3 {
            for i in 0..3 {
                assert_eq!(a[i + j * 3], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn lu_ref_unit_lower() {
        // LU with L = [[1,0],[2,1]], U = [[3,4],[0,5]] packed in place.
        let lu = vec![3.0f64, 2.0, 4.0, 5.0];
        let a = lu_ref(&lu, 2, 2, 2);
        assert_eq!(a, vec![3.0, 6.0, 4.0, 13.0]);
    }

    #[test]
    fn permute_rows_forward_order() {
        // ipiv = [1, 1]: swap rows (0,1) then nothing.
        let a = vec![1.0f64, 2.0, 3.0, 4.0]; // [[1,3],[2,4]]
        let p = permute_rows_ref(&a, 2, 2, &[1, 1]);
        assert_eq!(p, vec![2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn matvec_simple() {
        let a = vec![1.0f64, 0.0, 0.0, 1.0]; // identity
        assert_eq!(matvec_ref(&a, 2, 2, &[3.0, 4.0]), vec![3.0, 4.0]);
    }
}
