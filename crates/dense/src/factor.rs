//! One-sided factorizations, triangular inversion, and solves.
//!
//! These are the LAPACK-style routines the vbatched framework builds on:
//! `potf2` is the tile factorization the fused kernel embeds, `trtri`
//! feeds the inverted-diagonal-block `trsm` design, and the blocked
//! drivers (`potrf_blocked`, `getrf`, `geqrf`) serve both as CPU
//! baselines and as single-matrix references for the batched results.

use crate::error::{Error, Result};
use crate::level3::{axpy, dot, gemm, syrk, trsm};
use crate::matrix::{Diag, MatMut, MatRef, Side, Trans, Uplo};
use crate::scalar::Scalar;

/// Unblocked Cholesky factorization of the `uplo` triangle of `a`
/// (LAPACK `xPOTF2`): `A = L·Lᵀ` or `A = Uᵀ·U`, in place.
///
/// # Errors
/// [`Error::NotPositiveDefinite`] with the breakdown column if a pivot is
/// non-positive or non-finite; entries before that column are already
/// factored, as in LAPACK.
pub fn potf2<T: Scalar>(uplo: Uplo, mut a: MatMut<'_, T>) -> Result<()> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "potf2: matrix must be square");
    if uplo == Uplo::Lower && n <= POTF2_TILE_MAX && n > 1 && a.ld() > n {
        return potf2_tile_lower(a, n);
    }
    match uplo {
        Uplo::Lower => {
            // Left-looking by column: the trailing update of column j is
            // a sequence of column axpys `A(j+1.., j) −= A(j,l)·A(j+1.., l)`
            // over contiguous slices.
            for j in 0..n {
                let mut ajj = a.get(j, j);
                for l in 0..j {
                    let v = a.get(j, l);
                    ajj -= v * v;
                }
                if ajj <= T::ZERO || !ajj.is_finite() {
                    return Err(Error::NotPositiveDefinite { column: j });
                }
                let ajj = ajj.sqrt();
                a.set(j, j, ajj);
                if j + 1 == n {
                    continue;
                }
                for l in 0..j {
                    let w = a.get(j, l);
                    if w != T::ZERO {
                        let (dst, src) = a.col_pair_mut(j, l);
                        axpy(&mut dst[j + 1..], &src[j + 1..], -w);
                    }
                }
                for v in &mut a.col_as_mut_slice(j)[j + 1..] {
                    *v /= ajj;
                }
            }
        }
        Uplo::Upper => {
            // Column j's factored prefix is contiguous, so both the pivot
            // and the row-j update reduce to slice dot products.
            for j in 0..n {
                let ajj = {
                    let cj = a.col_as_slice(j);
                    a.get(j, j) - dot(&cj[..j], &cj[..j])
                };
                if ajj <= T::ZERO || !ajj.is_finite() {
                    return Err(Error::NotPositiveDefinite { column: j });
                }
                let ajj = ajj.sqrt();
                a.set(j, j, ajj);
                for i in j + 1..n {
                    let (ci, cj) = a.col_pair_mut(i, j);
                    ci[j] = (ci[j] - dot(&ci[..j], &cj[..j])) / ajj;
                }
            }
        }
    }
    Ok(())
}

/// Tiles at or below this order take the stack-buffer fast path in
/// [`potf2`] (Lower only): the triangle is copied into a dense local
/// tile so the whole factorization runs on one compact buffer instead
/// of strided columns of a much larger matrix.
const POTF2_TILE_MAX: usize = 32;

/// Lower `potf2` on a compact stack copy of the tile. The operation
/// order is identical to the in-place path, so the results are
/// bit-identical, including partial factorization up to a breakdown
/// column.
fn potf2_tile_lower<T: Scalar>(mut a: MatMut<'_, T>, n: usize) -> Result<()> {
    let mut buf = [T::ZERO; POTF2_TILE_MAX * POTF2_TILE_MAX];
    let tile = &mut buf[..n * n];
    for j in 0..n {
        tile[j * n + j..j * n + n].copy_from_slice(&a.col_as_mut_slice(j)[j..n]);
    }
    let store = |a: &mut MatMut<'_, T>, tile: &[T]| {
        for j in 0..n {
            a.col_as_mut_slice(j)[j..n].copy_from_slice(&tile[j * n + j..j * n + n]);
        }
    };
    for j in 0..n {
        let mut ajj = tile[j * n + j];
        for l in 0..j {
            let v = tile[l * n + j];
            ajj -= v * v;
        }
        if ajj <= T::ZERO || !ajj.is_finite() {
            store(&mut a, tile);
            return Err(Error::NotPositiveDefinite { column: j });
        }
        let ajj = ajj.sqrt();
        tile[j * n + j] = ajj;
        if j + 1 == n {
            continue;
        }
        for l in 0..j {
            let w = tile[l * n + j];
            if w != T::ZERO {
                let (head, rest) = tile.split_at_mut(j * n);
                let src = &head[l * n + j + 1..l * n + n];
                axpy(&mut rest[j + 1..n], src, -w);
            }
        }
        for v in &mut tile[j * n + j + 1..j * n + n] {
            *v /= ajj;
        }
    }
    store(&mut a, tile);
    Ok(())
}

/// Blocked right-looking Cholesky factorization (LAPACK `xPOTRF`) with
/// block size `nb`, in place.
///
/// # Errors
/// [`Error::NotPositiveDefinite`] with the *global* breakdown column.
pub fn potrf_blocked<T: Scalar>(uplo: Uplo, mut a: MatMut<'_, T>, nb: usize) -> Result<()> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "potrf: matrix must be square");
    assert!(nb > 0, "potrf: nb must be positive");
    let mut j = 0;
    while j < n {
        let jb = nb.min(n - j);
        // Factorize the diagonal tile.
        potf2(uplo, a.rb().sub(j, j, jb, jb)).map_err(|e| match e {
            Error::NotPositiveDefinite { column } => {
                Error::NotPositiveDefinite { column: j + column }
            }
            other => other,
        })?;
        let rest = n - j - jb;
        if rest > 0 {
            match uplo {
                Uplo::Lower => {
                    // Panel: A21 ← A21 · L11⁻ᵀ.
                    let l11 = a.alias_ref().sub(j, j, jb, jb);
                    trsm(
                        Side::Right,
                        Uplo::Lower,
                        Trans::Trans,
                        Diag::NonUnit,
                        T::ONE,
                        l11,
                        a.rb().sub(j + jb, j, rest, jb),
                    );
                    // Trailing update: A22 ← A22 − A21·A21ᵀ.
                    let a21 = a.alias_ref().sub(j + jb, j, rest, jb);
                    syrk(
                        Uplo::Lower,
                        Trans::NoTrans,
                        -T::ONE,
                        a21,
                        T::ONE,
                        a.rb().sub(j + jb, j + jb, rest, rest),
                    );
                }
                Uplo::Upper => {
                    let u11 = a.alias_ref().sub(j, j, jb, jb);
                    trsm(
                        Side::Left,
                        Uplo::Upper,
                        Trans::Trans,
                        Diag::NonUnit,
                        T::ONE,
                        u11,
                        a.rb().sub(j, j + jb, jb, rest),
                    );
                    let a12 = a.alias_ref().sub(j, j + jb, jb, rest);
                    syrk(
                        Uplo::Upper,
                        Trans::Trans,
                        -T::ONE,
                        a12,
                        T::ONE,
                        a.rb().sub(j + jb, j + jb, rest, rest),
                    );
                }
            }
        }
        j += jb;
    }
    Ok(())
}

/// In-place inversion of a triangular matrix (LAPACK `xTRTI2`).
///
/// This is the primitive the paper's vbatched `trsm` uses on 32×32
/// diagonal blocks before replacing substitution with `gemm`.
///
/// # Errors
/// [`Error::Singular`] on a zero diagonal entry (`NonUnit` only).
pub fn trtri<T: Scalar>(uplo: Uplo, diag: Diag, mut a: MatMut<'_, T>) -> Result<()> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "trtri: matrix must be square");
    if diag == Diag::NonUnit {
        for j in 0..n {
            if a.get(j, j) == T::ZERO {
                return Err(Error::Singular { column: j });
            }
        }
    }
    match uplo {
        Uplo::Lower => {
            // Column-wise forward substitution: X(:,j) solves L·X(:,j)=e_j.
            for j in 0..n {
                let xjj = if diag == Diag::NonUnit {
                    let v = T::ONE / a.get(j, j);
                    a.set(j, j, v);
                    v
                } else {
                    T::ONE
                };
                for i in j + 1..n {
                    // acc = Σ_{l=j}^{i-1} L(i,l)·X(l,j); the l = j term uses
                    // the not-yet-overwritten a(i,j) as L(i,j).
                    let mut acc = a.get(i, j) * xjj;
                    for l in j + 1..i {
                        acc += a.get(i, l) * a.get(l, j);
                    }
                    let d = if diag == Diag::NonUnit {
                        // a(i,i) still holds 1/L(i,i)? No: columns are
                        // processed left→right, so for i > j the diagonal
                        // entry a(i,i) is still L(i,i).
                        a.get(i, i)
                    } else {
                        T::ONE
                    };
                    a.set(i, j, -acc / d);
                }
            }
        }
        Uplo::Upper => {
            for j in (0..n).rev() {
                let xjj = if diag == Diag::NonUnit {
                    let v = T::ONE / a.get(j, j);
                    a.set(j, j, v);
                    v
                } else {
                    T::ONE
                };
                for i in (0..j).rev() {
                    let mut acc = a.get(i, j) * xjj;
                    for l in i + 1..j {
                        acc += a.get(i, l) * a.get(l, j);
                    }
                    let d = if diag == Diag::NonUnit {
                        a.get(i, i)
                    } else {
                        T::ONE
                    };
                    a.set(i, j, -acc / d);
                }
            }
        }
    }
    Ok(())
}

/// Triangular-factor product (LAPACK `xLAUU2`): overwrites the `uplo`
/// triangle of `a` with `Lᵀ·L` (Lower) or `U·Uᵀ` (Upper). Combined with
/// [`trtri`], this yields the SPD inverse from a Cholesky factor
/// (`xPOTRI`): `A⁻¹ = L⁻ᵀ·L⁻¹ = lauum(trtri(L))`.
pub fn lauum<T: Scalar>(uplo: Uplo, mut a: MatMut<'_, T>) {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "lauum: matrix must be square");
    match uplo {
        Uplo::Lower => {
            // Row i of the result uses rows i.. of the original factor;
            // ascending order keeps them intact until consumed.
            for i in 0..n {
                let aii = a.get(i, i);
                // Row update: a(i, 0..i) = aii·a(i, 0..i) + a(i+1.., 0..i)ᵀ·a(i+1.., i).
                for j in 0..i {
                    let mut acc = aii * a.get(i, j);
                    for l in i + 1..n {
                        acc += a.get(l, i) * a.get(l, j);
                    }
                    a.set(i, j, acc);
                }
                // Diagonal: a(i,i) = aii² + ‖a(i+1.., i)‖².
                let mut d = aii * aii;
                for l in i + 1..n {
                    let v = a.get(l, i);
                    d += v * v;
                }
                a.set(i, i, d);
            }
        }
        Uplo::Upper => {
            for i in 0..n {
                let aii = a.get(i, i);
                for j in 0..i {
                    let mut acc = aii * a.get(j, i);
                    for l in i + 1..n {
                        acc += a.get(i, l) * a.get(j, l);
                    }
                    a.set(j, i, acc);
                }
                let mut d = aii * aii;
                for l in i + 1..n {
                    let v = a.get(i, l);
                    d += v * v;
                }
                a.set(i, i, d);
            }
        }
    }
}

/// SPD inverse from a Cholesky factor (LAPACK `xPOTRI`): triangular
/// inversion followed by [`lauum`]; the `uplo` triangle of `a` receives
/// the corresponding triangle of `A⁻¹`.
///
/// # Errors
/// [`Error::Singular`] from the triangular inversion.
pub fn potri<T: Scalar>(uplo: Uplo, mut a: MatMut<'_, T>) -> Result<()> {
    trtri(uplo, Diag::NonUnit, a.rb())?;
    lauum(uplo, a);
    Ok(())
}

/// Unblocked LU factorization with partial pivoting (LAPACK `xGETF2`),
/// in place. `ipiv[i]` receives the zero-based row swapped with row `i`.
///
/// # Errors
/// [`Error::Singular`] if a pivot column is exactly zero; the
/// factorization up to that column is still valid, as in LAPACK.
pub fn getf2<T: Scalar>(mut a: MatMut<'_, T>, ipiv: &mut [usize]) -> Result<()> {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    assert!(ipiv.len() >= k, "getf2: ipiv too short");
    let mut first_zero: Option<usize> = None;
    for (j, piv) in ipiv.iter_mut().enumerate().take(k) {
        // Pivot search in column j, rows j..m.
        let mut p = j;
        let mut best = a.get(j, j).abs();
        for i in j + 1..m {
            let v = a.get(i, j).abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        *piv = p;
        if best == T::ZERO {
            if first_zero.is_none() {
                first_zero = Some(j);
            }
            continue;
        }
        if p != j {
            for c in 0..n {
                let t = a.get(j, c);
                a.set(j, c, a.get(p, c));
                a.set(p, c, t);
            }
        }
        let pivot = a.get(j, j);
        for i in j + 1..m {
            let v = a.get(i, j) / pivot;
            a.set(i, j, v);
        }
        // Rank-1 update of the trailing matrix.
        for c in j + 1..n {
            let ajc = a.get(j, c);
            if ajc == T::ZERO {
                continue;
            }
            for i in j + 1..m {
                let v = a.get(i, c) - a.get(i, j) * ajc;
                a.set(i, c, v);
            }
        }
    }
    match first_zero {
        Some(j) => Err(Error::Singular { column: j }),
        None => Ok(()),
    }
}

/// Applies a sequence of row interchanges (LAPACK `xLASWP`, forward
/// order): for `i` in `k1..k2`, swap rows `i` and `ipiv[i]` of `a`.
pub fn laswp<T: Scalar>(mut a: MatMut<'_, T>, k1: usize, k2: usize, ipiv: &[usize]) {
    let n = a.ncols();
    for (i, &p) in ipiv.iter().enumerate().take(k2).skip(k1) {
        if p != i {
            for j in 0..n {
                let t = a.get(i, j);
                a.set(i, j, a.get(p, j));
                a.set(p, j, t);
            }
        }
    }
}

/// Blocked LU factorization with partial pivoting (LAPACK `xGETRF`),
/// in place, with block size `nb`.
///
/// # Errors
/// [`Error::Singular`] with the global column of the first zero pivot.
pub fn getrf<T: Scalar>(mut a: MatMut<'_, T>, ipiv: &mut [usize], nb: usize) -> Result<()> {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    assert!(ipiv.len() >= k, "getrf: ipiv too short");
    assert!(nb > 0, "getrf: nb must be positive");
    let mut first_err: Option<usize> = None;
    let mut j = 0;
    while j < k {
        let jb = nb.min(k - j);
        // Factor the panel A[j:m, j:j+jb] with local pivoting.
        let panel_rows = m - j;
        match getf2(a.rb().sub(j, j, panel_rows, jb), &mut ipiv[j..j + jb]) {
            Ok(()) => {}
            Err(Error::Singular { column }) => {
                if first_err.is_none() {
                    first_err = Some(j + column);
                }
            }
            Err(e) => return Err(e),
        }
        // Globalize pivot indices and apply the swaps to the columns
        // outside the panel.
        for p in &mut ipiv[j..j + jb] {
            *p += j;
        }
        if j > 0 {
            laswp(a.rb().sub(0, 0, m, j), j, j + jb, ipiv);
        }
        if j + jb < n {
            laswp(a.rb().sub(0, j + jb, m, n - j - jb), j, j + jb, ipiv);
            // U12 ← L11⁻¹·A12.
            let l11 = a.alias_ref().sub(j, j, jb, jb);
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::Unit,
                T::ONE,
                l11,
                a.rb().sub(j, j + jb, jb, n - j - jb),
            );
            // A22 ← A22 − L21·U12.
            if j + jb < m {
                let l21 = a.alias_ref().sub(j + jb, j, m - j - jb, jb);
                let u12 = a.alias_ref().sub(j, j + jb, jb, n - j - jb);
                gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    -T::ONE,
                    l21,
                    u12,
                    T::ONE,
                    a.rb().sub(j + jb, j + jb, m - j - jb, n - j - jb),
                );
            }
        }
        j += jb;
    }
    match first_err {
        Some(c) => Err(Error::Singular { column: c }),
        None => Ok(()),
    }
}

/// Applies the elementary reflector `H = I − τ·v·vᵀ` from the left to
/// `c`, where `v = [1; v_tail]` (LAPACK `xLARF`, left, forward storage).
pub fn larf_left<T: Scalar>(v_tail: MatRef<'_, T>, tau: T, mut c: MatMut<'_, T>) {
    let m = c.nrows();
    let n = c.ncols();
    debug_assert_eq!(v_tail.nrows() + 1, m, "larf: v length mismatch");
    if tau == T::ZERO || m == 0 {
        return;
    }
    for j in 0..n {
        // w = vᵀ·C(:,j) with v(0) = 1.
        let mut w = c.get(0, j);
        for i in 1..m {
            w += v_tail.get(i - 1, 0) * c.get(i, j);
        }
        let t = tau * w;
        let v0 = c.get(0, j) - t;
        c.set(0, j, v0);
        for i in 1..m {
            let cur = c.get(i, j);
            c.set(i, j, cur - v_tail.get(i - 1, 0) * t);
        }
    }
}

/// Unblocked Householder QR factorization (LAPACK `xGEQR2`), in place:
/// `R` lands in the upper triangle, the reflector tails below the
/// diagonal, with scalars in `tau` (length `min(m,n)`).
pub fn geqr2<T: Scalar>(mut a: MatMut<'_, T>, tau: &mut [T]) {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    assert!(tau.len() >= k, "geqr2: tau too short");
    for (j, tau_j) in tau.iter_mut().enumerate().take(k) {
        // Generate the reflector for column j (LAPACK xLARFG).
        let alpha = a.get(j, j);
        let mut xnorm2 = T::ZERO;
        for i in j + 1..m {
            let v = a.get(i, j);
            xnorm2 += v * v;
        }
        if xnorm2 == T::ZERO {
            *tau_j = T::ZERO;
        } else {
            let norm = (alpha * alpha + xnorm2).sqrt();
            let beta = if alpha >= T::ZERO { -norm } else { norm };
            *tau_j = (beta - alpha) / beta;
            let scale = T::ONE / (alpha - beta);
            for i in j + 1..m {
                let v = a.get(i, j) * scale;
                a.set(i, j, v);
            }
            a.set(j, j, beta);
        }
        // Apply H_j to the trailing columns A[j:m, j+1:n].
        if j + 1 < n && *tau_j != T::ZERO {
            let v_tail = a.alias_ref().sub(j + 1, j, m - j - 1, 1);
            let trailing = a.rb().sub(j, j + 1, m - j, n - j - 1);
            larf_left(v_tail, *tau_j, trailing);
        }
    }
}

/// Forms the upper-triangular block-reflector factor `T` (LAPACK
/// `xLARFT`, forward columnwise) for the `jb` reflectors stored
/// unit-lower in `v` (`rows × jb`), writing it into the packed `jb × jb`
/// buffer `t_out`.
pub fn larft<T: Scalar>(v: MatRef<'_, T>, tau: &[T], t_out: &mut [T]) {
    let rows = v.nrows();
    let jb = v.ncols();
    assert!(tau.len() >= jb, "larft: tau too short");
    assert!(t_out.len() >= jb * jb, "larft: T buffer too short");
    for x in t_out.iter_mut().take(jb * jb) {
        *x = T::ZERO;
    }
    for c in 0..jb {
        let tc = tau[c];
        t_out[c + c * jb] = tc;
        if tc == T::ZERO {
            continue;
        }
        // t(0..c, c) = −τ_c · T(0..c,0..c) · (Vᵀ·v_c)(0..c)
        let mut w = vec![T::ZERO; c];
        for (p, wp) in w.iter_mut().enumerate() {
            // w_p = v_pᵀ·v_c over rows p..rows (unit diagonal at row p,
            // v_c zero above row c, implicit 1 at row c).
            let mut acc = v.get(c, p);
            for r in c + 1..rows {
                acc += v.get(r, p) * v.get(r, c);
            }
            *wp = acc;
        }
        for p in 0..c {
            let mut acc = T::ZERO;
            for q in p..c {
                acc += t_out[p + q * jb] * w[q];
            }
            t_out[p + c * jb] = -tc * acc;
        }
    }
}

/// Applies the transpose of the block reflector `(I − V·T·Vᵀ)` from the
/// left to `c` (LAPACK `xLARFB`, left, transpose, forward columnwise):
/// `C ← (I − V·Tᵀ·Vᵀ)·C`. `v` is the `rows × jb` unit-lower reflector
/// panel, `t` the packed `jb × jb` factor from [`larft`].
pub fn larfb_left_t<T: Scalar>(v: MatRef<'_, T>, t: &[T], mut c: MatMut<'_, T>) {
    let rows = v.nrows();
    let jb = v.ncols();
    let cols = c.ncols();
    assert_eq!(c.nrows(), rows, "larfb: C row mismatch");
    if cols == 0 || jb == 0 {
        return;
    }
    // W = Vᵀ·C (jb × cols).
    let mut w = vec![T::ZERO; jb * cols];
    for cc in 0..cols {
        for p in 0..jb {
            let mut acc = c.get(p, cc);
            for r in p + 1..rows {
                acc += v.get(r, p) * c.get(r, cc);
            }
            w[p + cc * jb] = acc;
        }
    }
    // W ← Tᵀ·W (T upper ⇒ Tᵀ lower); descend so old entries survive.
    for cc in 0..cols {
        for p in (0..jb).rev() {
            let mut acc = T::ZERO;
            for q in 0..=p {
                acc += t[q + p * jb] * w[q + cc * jb];
            }
            w[p + cc * jb] = acc;
        }
    }
    // C ← C − V·W.
    for cc in 0..cols {
        for p in 0..jb {
            let wpc = w[p + cc * jb];
            if wpc == T::ZERO {
                continue;
            }
            let cur = c.get(p, cc);
            c.set(p, cc, cur - wpc);
            for r in p + 1..rows {
                let cur = c.get(r, cc);
                c.set(r, cc, cur - v.get(r, p) * wpc);
            }
        }
    }
}

/// Blocked Householder QR factorization (LAPACK `xGEQRF`): `geqr2` on
/// each `nb`-wide panel, then a [`larft`]/[`larfb_left_t`] compact-WY
/// update of the trailing matrix — the same structure the separated
/// vbatched QR uses on the simulated device.
pub fn geqrf<T: Scalar>(mut a: MatMut<'_, T>, tau: &mut [T], nb: usize) {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    assert!(tau.len() >= k, "geqrf: tau too short");
    assert!(nb > 0, "geqrf: nb must be positive");
    let mut j = 0;
    while j < k {
        let jb = nb.min(k - j);
        let rows = m - j;
        geqr2(a.rb().sub(j, j, rows, jb), &mut tau[j..j + jb]);
        let cols_right = n - j - jb;
        if cols_right > 0 {
            let v = a.alias_ref().sub(j, j, rows, jb); // unit-lower V in place
            let mut t = vec![T::ZERO; jb * jb];
            larft(v, &tau[j..j + jb], &mut t);
            let c_view = a.rb().sub(j, j + jb, rows, cols_right);
            larfb_left_t(v, &t, c_view);
        }
        j += jb;
    }
}

/// Solves `A·X = B` after [`potf2`]/[`potrf_blocked`] (LAPACK `xPOTRS`):
/// two triangular solves against the stored factor.
pub fn potrs<T: Scalar>(uplo: Uplo, factor: MatRef<'_, T>, mut b: MatMut<'_, T>) {
    match uplo {
        Uplo::Lower => {
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                T::ONE,
                factor,
                b.rb(),
            );
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::Trans,
                Diag::NonUnit,
                T::ONE,
                factor,
                b.rb(),
            );
        }
        Uplo::Upper => {
            trsm(
                Side::Left,
                Uplo::Upper,
                Trans::Trans,
                Diag::NonUnit,
                T::ONE,
                factor,
                b.rb(),
            );
            trsm(
                Side::Left,
                Uplo::Upper,
                Trans::NoTrans,
                Diag::NonUnit,
                T::ONE,
                factor,
                b.rb(),
            );
        }
    }
}

/// Solves `A·X = B` after [`getrf`] (LAPACK `xGETRS`, no transpose).
pub fn getrs<T: Scalar>(factor: MatRef<'_, T>, ipiv: &[usize], mut b: MatMut<'_, T>) {
    let n = factor.nrows();
    laswp(b.rb(), 0, n.min(ipiv.len()), ipiv);
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::NoTrans,
        Diag::Unit,
        T::ONE,
        factor,
        b.rb(),
    );
    trsm(
        Side::Left,
        Uplo::Upper,
        Trans::NoTrans,
        Diag::NonUnit,
        T::ONE,
        factor,
        b.rb(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{diag_dominant_vec, rand_mat, seeded_rng, spd_vec};
    use crate::naive;
    use crate::verify::{
        chol_residual, lu_residual, max_abs_diff_slices, qr_residual, residual_tol,
    };

    #[test]
    fn potf2_known_3x3() {
        // A = L L^T with L = [[2,0,0],[1,1,0],[0,3,1]].
        let mut a = vec![4.0f64, 2.0, 0.0, 2.0, 2.0, 3.0, 0.0, 3.0, 10.0];
        potf2(Uplo::Lower, MatMut::from_slice(&mut a, 3, 3, 3)).unwrap();
        let l = [2.0, 1.0, 0.0, 1.0, 3.0, 1.0];
        let got = [a[0], a[1], a[2], a[4], a[5], a[8]];
        for (g, w) in got.iter().zip(l.iter()) {
            assert!((g - w).abs() < 1e-14, "{got:?}");
        }
    }

    #[test]
    fn potf2_both_uplos_residual() {
        let mut rng = seeded_rng(21);
        for &n in &[1usize, 2, 5, 17, 33] {
            for &uplo in &[Uplo::Lower, Uplo::Upper] {
                let orig = spd_vec::<f64>(&mut rng, n);
                let mut a = orig.clone();
                potf2(uplo, MatMut::from_slice(&mut a, n, n, n)).unwrap();
                let r = chol_residual(
                    uplo,
                    MatRef::from_slice(&a, n, n, n),
                    MatRef::from_slice(&orig, n, n, n),
                );
                assert!(r < residual_tol::<f64>(n), "n={n} {uplo:?} residual {r}");
            }
        }
    }

    #[test]
    fn potf2_reports_breakdown_column() {
        // Indefinite matrix: fails at column 1.
        let mut a = vec![1.0f64, 2.0, 2.0, 1.0];
        let err = potf2(Uplo::Lower, MatMut::from_slice(&mut a, 2, 2, 2)).unwrap_err();
        assert_eq!(err, Error::NotPositiveDefinite { column: 1 });
        assert_eq!(err.info(), 2);
    }

    #[test]
    fn potrf_blocked_matches_potf2() {
        let mut rng = seeded_rng(22);
        for &n in &[4usize, 8, 13, 32, 70] {
            for &nb in &[2usize, 8, 100] {
                for &uplo in &[Uplo::Lower, Uplo::Upper] {
                    let orig = spd_vec::<f64>(&mut rng, n);
                    let mut b1 = orig.clone();
                    let mut b2 = orig.clone();
                    potf2(uplo, MatMut::from_slice(&mut b1, n, n, n)).unwrap();
                    potrf_blocked(uplo, MatMut::from_slice(&mut b2, n, n, n), nb).unwrap();
                    // Compare only the factored triangle.
                    for j in 0..n {
                        for i in 0..n {
                            let in_tri = match uplo {
                                Uplo::Lower => i >= j,
                                Uplo::Upper => i <= j,
                            };
                            if in_tri {
                                let d = (b1[i + j * n] - b2[i + j * n]).abs();
                                assert!(d < 1e-10, "n={n} nb={nb} ({i},{j}) diff {d}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn potrf_blocked_global_breakdown_column() {
        // SPD leading 4x4 but indefinite at global column 5.
        let mut rng = seeded_rng(23);
        let n = 8;
        let mut a = spd_vec::<f64>(&mut rng, n);
        // Make trailing part indefinite: huge negative diagonal.
        a[5 + 5 * n] = -1e6;
        let err = potrf_blocked(Uplo::Lower, MatMut::from_slice(&mut a, n, n, n), 3).unwrap_err();
        match err {
            Error::NotPositiveDefinite { column } => assert_eq!(column, 5),
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn trtri_inverts_lower() {
        let mut rng = seeded_rng(24);
        for &n in &[1usize, 2, 7, 16, 31] {
            for &diag in &[Diag::NonUnit, Diag::Unit] {
                for &uplo in &[Uplo::Lower, Uplo::Upper] {
                    // Build a well-conditioned triangular matrix.
                    let mut t = rand_mat::<f64>(&mut rng, n * n);
                    for j in 0..n {
                        for i in 0..n {
                            let outside = match uplo {
                                Uplo::Lower => i < j,
                                Uplo::Upper => i > j,
                            };
                            if outside {
                                t[i + j * n] = 0.0;
                            }
                        }
                        t[j + j * n] = 2.0 + t[j + j * n].abs();
                    }
                    let mut inv = t.clone();
                    trtri(uplo, diag, MatMut::from_slice(&mut inv, n, n, n)).unwrap();
                    // T · T⁻¹ = I on the triangle (Unit: implicit ones).
                    let fix = |mut m: Vec<f64>| {
                        if diag == Diag::Unit {
                            for j in 0..n {
                                m[j + j * n] = 1.0;
                            }
                        }
                        m
                    };
                    let tt = fix(t.clone());
                    let ii = fix(inv.clone());
                    let prod = naive::gemm_ref(
                        Trans::NoTrans,
                        Trans::NoTrans,
                        1.0,
                        &tt,
                        n,
                        n,
                        &ii,
                        n,
                        n,
                        0.0,
                        &vec![0.0; n * n],
                        n,
                        n,
                    );
                    for j in 0..n {
                        for i in 0..n {
                            let want = if i == j { 1.0 } else { 0.0 };
                            assert!(
                                (prod[i + j * n] - want).abs() < 1e-10,
                                "{uplo:?} {diag:?} n={n} ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trtri_detects_singular() {
        let mut a = vec![1.0f64, 5.0, 0.0, 0.0];
        let err = trtri(
            Uplo::Lower,
            Diag::NonUnit,
            MatMut::from_slice(&mut a, 2, 2, 2),
        )
        .unwrap_err();
        assert_eq!(err, Error::Singular { column: 1 });
    }

    #[test]
    fn potri_inverts_spd() {
        let mut rng = seeded_rng(29);
        for &n in &[1usize, 2, 7, 20] {
            for &uplo in &[Uplo::Lower, Uplo::Upper] {
                let a = spd_vec::<f64>(&mut rng, n);
                let mut inv = a.clone();
                potf2(uplo, MatMut::from_slice(&mut inv, n, n, n)).unwrap();
                potri(uplo, MatMut::from_slice(&mut inv, n, n, n)).unwrap();
                // Symmetrize the stored triangle, then check A·A⁻¹ = I.
                let mut full = vec![0.0f64; n * n];
                for j in 0..n {
                    for i in 0..n {
                        let (r, c) = match uplo {
                            Uplo::Lower => (i.max(j), i.min(j)),
                            Uplo::Upper => (i.min(j), i.max(j)),
                        };
                        full[i + j * n] = inv[r + c * n];
                    }
                }
                let prod = naive::gemm_ref(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    1.0,
                    &a,
                    n,
                    n,
                    &full,
                    n,
                    n,
                    0.0,
                    &vec![0.0; n * n],
                    n,
                    n,
                );
                for j in 0..n {
                    for i in 0..n {
                        let want = if i == j { 1.0 } else { 0.0 };
                        assert!(
                            (prod[i + j * n] - want).abs() < 1e-8,
                            "{uplo:?} n={n} at ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lauum_matches_explicit_product() {
        let mut rng = seeded_rng(30);
        let n = 9;
        // Lower: Lᵀ·L.
        let mut l = rand_mat::<f64>(&mut rng, n * n);
        for j in 0..n {
            for i in 0..j {
                l[i + j * n] = 0.0;
            }
        }
        let mut got = l.clone();
        lauum(Uplo::Lower, MatMut::from_slice(&mut got, n, n, n));
        let want = naive::gemm_ref(
            Trans::Trans,
            Trans::NoTrans,
            1.0,
            &l,
            n,
            n,
            &l,
            n,
            n,
            0.0,
            &vec![0.0; n * n],
            n,
            n,
        );
        for j in 0..n {
            for i in j..n {
                assert!(
                    (got[i + j * n] - want[i + j * n]).abs() < 1e-12,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn getf2_and_getrf_residual() {
        let mut rng = seeded_rng(25);
        for &(m, n) in &[(5usize, 5usize), (8, 5), (5, 8), (16, 16), (33, 29)] {
            let orig = rand_mat::<f64>(&mut rng, m * n);
            let k = m.min(n);

            let mut a1 = orig.clone();
            let mut p1 = vec![0usize; k];
            getf2(MatMut::from_slice(&mut a1, m, n, m), &mut p1).unwrap();
            let r1 = lu_residual(
                MatRef::from_slice(&a1, m, n, m),
                &p1,
                MatRef::from_slice(&orig, m, n, m),
            );
            assert!(
                r1 < residual_tol::<f64>(m.max(n)),
                "getf2 {m}x{n} residual {r1}"
            );

            let mut a2 = orig.clone();
            let mut p2 = vec![0usize; k];
            getrf(MatMut::from_slice(&mut a2, m, n, m), &mut p2, 4).unwrap();
            let r2 = lu_residual(
                MatRef::from_slice(&a2, m, n, m),
                &p2,
                MatRef::from_slice(&orig, m, n, m),
            );
            assert!(
                r2 < residual_tol::<f64>(m.max(n)),
                "getrf {m}x{n} residual {r2}"
            );
        }
    }

    #[test]
    fn getf2_flags_singular_column() {
        let mut a = vec![0.0f64; 9];
        // Column 0 all zeros ⇒ singular at column 0; rest arbitrary.
        a[3] = 1.0;
        a[7] = 1.0;
        a[2 + 2 * 3] = 1.0;
        let mut p = vec![0usize; 3];
        let err = getf2(MatMut::from_slice(&mut a, 3, 3, 3), &mut p).unwrap_err();
        assert_eq!(err, Error::Singular { column: 0 });
    }

    #[test]
    fn geqr2_and_geqrf_residuals() {
        let mut rng = seeded_rng(26);
        for &(m, n) in &[(5usize, 5usize), (12, 7), (7, 12), (24, 24), (40, 16)] {
            let orig = rand_mat::<f64>(&mut rng, m * n);
            let k = m.min(n);

            let mut a1 = orig.clone();
            let mut t1 = vec![0.0f64; k];
            geqr2(MatMut::from_slice(&mut a1, m, n, m), &mut t1);
            let (r, o) = qr_residual(
                MatRef::from_slice(&a1, m, n, m),
                &t1,
                MatRef::from_slice(&orig, m, n, m),
            );
            assert!(
                r < residual_tol::<f64>(m.max(n)),
                "geqr2 {m}x{n} residual {r}"
            );
            assert!(o < residual_tol::<f64>(m.max(n)), "geqr2 {m}x{n} orth {o}");

            let mut a2 = orig.clone();
            let mut t2 = vec![0.0f64; k];
            geqrf(MatMut::from_slice(&mut a2, m, n, m), &mut t2, 5);
            let (r, o) = qr_residual(
                MatRef::from_slice(&a2, m, n, m),
                &t2,
                MatRef::from_slice(&orig, m, n, m),
            );
            assert!(
                r < residual_tol::<f64>(m.max(n)),
                "geqrf {m}x{n} residual {r}"
            );
            assert!(o < residual_tol::<f64>(m.max(n)), "geqrf {m}x{n} orth {o}");

            // Blocked and unblocked must agree bitwise-closely on R.
            let mut max_d = 0.0f64;
            for j in 0..n {
                for i in 0..=j.min(m - 1) {
                    max_d = max_d.max((a1[i + j * m] - a2[i + j * m]).abs());
                }
            }
            assert!(max_d < 1e-10, "R mismatch {m}x{n}: {max_d}");
        }
    }

    #[test]
    fn potrs_solves() {
        let mut rng = seeded_rng(27);
        let n = 12;
        let nrhs = 3;
        let a = spd_vec::<f64>(&mut rng, n);
        let x_true = rand_mat::<f64>(&mut rng, n * nrhs);
        let b = naive::gemm_ref(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            &a,
            n,
            n,
            &x_true,
            n,
            nrhs,
            0.0,
            &vec![0.0; n * nrhs],
            n,
            nrhs,
        );
        for &uplo in &[Uplo::Lower, Uplo::Upper] {
            let mut f = a.clone();
            potf2(uplo, MatMut::from_slice(&mut f, n, n, n)).unwrap();
            let mut x = b.clone();
            potrs(
                uplo,
                MatRef::from_slice(&f, n, n, n),
                MatMut::from_slice(&mut x, n, nrhs, n),
            );
            assert!(max_abs_diff_slices(&x, &x_true) < 1e-9, "{uplo:?}");
        }
    }

    #[test]
    fn getrs_solves() {
        let mut rng = seeded_rng(28);
        let n = 11;
        let nrhs = 2;
        let a = diag_dominant_vec::<f64>(&mut rng, n, n);
        let x_true = rand_mat::<f64>(&mut rng, n * nrhs);
        let b = naive::gemm_ref(
            Trans::NoTrans,
            Trans::NoTrans,
            1.0,
            &a,
            n,
            n,
            &x_true,
            n,
            nrhs,
            0.0,
            &vec![0.0; n * nrhs],
            n,
            nrhs,
        );
        let mut f = a.clone();
        let mut p = vec![0usize; n];
        getrf(MatMut::from_slice(&mut f, n, n, n), &mut p, 4).unwrap();
        let mut x = b.clone();
        getrs(
            MatRef::from_slice(&f, n, n, n),
            &p,
            MatMut::from_slice(&mut x, n, nrhs, n),
        );
        assert!(max_abs_diff_slices(&x, &x_true) < 1e-9);
    }

    #[test]
    fn larf_identity_when_tau_zero() {
        let v = [0.5f64];
        let mut c = vec![1.0f64, 2.0];
        larf_left(
            MatRef::from_slice(&v, 1, 1, 1),
            0.0,
            MatMut::from_slice(&mut c, 2, 1, 2),
        );
        assert_eq!(c, vec![1.0, 2.0]);
    }
}
