//! Carrier package for the workspace's cross-crate integration tests,
//! which live in `/tests` at the repository root (see the `[[test]]`
//! entries in this crate's `Cargo.toml`). The library itself is empty.
