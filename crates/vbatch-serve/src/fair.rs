//! Per-tenant queues with deficit-round-robin window building.
//!
//! Each tenant owns one bounded FIFO. Windows are assembled by classic
//! deficit round-robin (Shreedhar/Varghese) with the *device cost model*
//! as the currency: every round, each tenant with eligible work earns a
//! quantum of device-seconds, and requests are drafted from its FIFO
//! while its deficit covers their modeled cost. A tenant flooding large
//! matrices therefore cannot starve a tenant sending small ones — both
//! drain at the same device-seconds rate, not the same request rate.
//!
//! The ring is insertion-ordered and the cursor persists across windows,
//! so scheduling is a pure function of the submission sequence — no
//! hashing, no wall clock (the crate sits in the analyzer's determinism
//! scope, VBA201).

use std::collections::VecDeque;

use crate::request::{Op, Request};

struct Tenant<T> {
    id: u32,
    fifo: VecDeque<Request<T>>,
    deficit_s: f64,
}

/// All tenants' pending work plus the DRR state.
pub(crate) struct TenantQueues<T> {
    tenants: Vec<Tenant<T>>,
    cursor: usize,
    pending: usize,
    queued_cost_s: f64,
}

impl<T> TenantQueues<T> {
    pub fn new() -> Self {
        Self {
            tenants: Vec::new(),
            cursor: 0,
            pending: 0,
            queued_cost_s: 0.0,
        }
    }

    /// Requests currently queued across all tenants.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Modeled device-seconds currently queued (the load-shedding
    /// signal).
    pub fn queued_cost_s(&self) -> f64 {
        self.queued_cost_s
    }

    /// Queue depth of one tenant (0 if never seen).
    pub fn depth(&self, tenant: u32) -> usize {
        self.tenants
            .iter()
            .find(|t| t.id == tenant)
            .map_or(0, |t| t.fifo.len())
    }

    /// Appends to the tenant's FIFO (creating the tenant on first use).
    pub fn enqueue(&mut self, req: Request<T>) {
        self.pending += 1;
        self.queued_cost_s += req.cost_s;
        match self.tenants.iter_mut().find(|t| t.id == req.tenant) {
            Some(t) => t.fifo.push_back(req),
            None => self.tenants.push(Tenant {
                id: req.tenant,
                fifo: VecDeque::from([req]),
                deficit_s: 0.0,
            }),
        }
    }

    /// Earliest arrival among all queued requests, with its operation —
    /// the request whose `max_wait` deadline fires first. Per-tenant
    /// FIFOs are arrival-ordered, so only fronts need scanning.
    pub fn oldest(&self) -> Option<(f64, Op)> {
        self.tenants
            .iter()
            .filter_map(|t| t.fifo.front())
            .map(|r| (r.arrival_s, r.op))
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }

    /// Removes and returns every request whose deadline has passed at
    /// `now_s` (timeout cancellation *before* dispatch: an expired
    /// request never costs device time).
    pub fn expire(&mut self, now_s: f64) -> Vec<Request<T>> {
        let mut out = Vec::new();
        for t in &mut self.tenants {
            let mut kept = VecDeque::with_capacity(t.fifo.len());
            for r in t.fifo.drain(..) {
                if r.deadline_s.is_some_and(|d| d < now_s) {
                    self.pending -= 1;
                    self.queued_cost_s -= r.cost_s;
                    out.push(r);
                } else {
                    kept.push_back(r);
                }
            }
            t.fifo = kept;
        }
        out
    }

    /// Drafts up to `max_window` requests of operation `op` by deficit
    /// round-robin with the given quantum (device-seconds per tenant per
    /// round). Requests of the other operation keep their queue
    /// positions for a later window.
    pub fn collect_window(&mut self, op: Op, max_window: usize, quantum_s: f64) -> Vec<Request<T>> {
        let quantum_s = quantum_s.max(f64::MIN_POSITIVE);
        let mut picked = Vec::new();
        if self.tenants.is_empty() || max_window == 0 {
            return picked;
        }
        let n = self.tenants.len();
        loop {
            let mut any_eligible = false;
            for k in 0..n {
                let slot = (self.cursor + k) % n;
                let t = &mut self.tenants[slot];
                if !t.fifo.iter().any(|r| r.op == op) {
                    // Standard DRR: an empty (here: ineligible) queue
                    // does not bank credit.
                    t.deficit_s = 0.0;
                    continue;
                }
                any_eligible = true;
                t.deficit_s += quantum_s;
                // Draft in-order matching requests this deficit covers.
                let mut i = 0;
                while i < t.fifo.len() && picked.len() < max_window {
                    if t.fifo[i].op == op && t.fifo[i].cost_s <= t.deficit_s {
                        let r = t.fifo.remove(i).expect("index checked");
                        t.deficit_s -= r.cost_s;
                        self.pending -= 1;
                        self.queued_cost_s -= r.cost_s;
                        picked.push(r);
                    } else if t.fifo[i].op == op {
                        break; // deficit exhausted for this tenant
                    } else {
                        i += 1; // other-op request holds its place
                    }
                }
                if picked.len() >= max_window {
                    // Resume the ring *after* the tenant just served.
                    self.cursor = (slot + 1) % n;
                    return picked;
                }
            }
            if !any_eligible {
                return picked;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, tenant: u32, op: Op, cost_s: f64, arrival_s: f64) -> Request<f64> {
        Request {
            id,
            tenant,
            op,
            n: 4,
            payload: Vec::new(),
            arrival_s,
            deadline_s: None,
            cost_s,
        }
    }

    #[test]
    fn drr_interleaves_tenants_by_cost_not_count() {
        let mut q = TenantQueues::new();
        // Tenant 0 floods 8 heavy requests; tenant 1 sends 8 light ones
        // (1/4 the cost). A cost-fair draft must take ~4 light per heavy.
        for i in 0..8 {
            q.enqueue(req(i, 0, Op::Potrf, 4.0, i as f64));
        }
        for i in 0..8 {
            q.enqueue(req(100 + i, 1, Op::Potrf, 1.0, i as f64));
        }
        let w = q.collect_window(Op::Potrf, 10, 4.0);
        assert_eq!(w.len(), 10);
        let heavy = w.iter().filter(|r| r.tenant == 0).count();
        let light = w.iter().filter(|r| r.tenant == 1).count();
        assert_eq!(
            (heavy, light),
            (2, 8),
            "4.0-quantum rounds: 1 heavy + 4 light each"
        );
        // Per-tenant FIFO order is preserved.
        let ids0: Vec<u64> = w.iter().filter(|r| r.tenant == 0).map(|r| r.id).collect();
        assert_eq!(ids0, vec![0, 1]);
    }

    #[test]
    fn other_op_requests_hold_their_place() {
        let mut q = TenantQueues::new();
        q.enqueue(req(0, 3, Op::Getrf, 1.0, 0.0));
        q.enqueue(req(1, 3, Op::Potrf, 1.0, 1.0));
        let w = q.collect_window(Op::Potrf, 8, 10.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].id, 1);
        assert_eq!(q.pending(), 1);
        assert_eq!(q.oldest().map(|(_, op)| op), Some(Op::Getrf));
    }

    #[test]
    fn expire_cancels_due_requests_only() {
        let mut q = TenantQueues::new();
        let mut a = req(0, 0, Op::Potrf, 1.0, 0.0);
        a.deadline_s = Some(5.0);
        let mut b = req(1, 0, Op::Potrf, 1.0, 1.0);
        b.deadline_s = Some(50.0);
        q.enqueue(a);
        q.enqueue(b);
        let dead = q.expire(10.0);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, 0);
        assert_eq!(q.pending(), 1);
        assert!((q.queued_cost_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_request_accumulates_deficit_and_eventually_runs() {
        let mut q = TenantQueues::new();
        q.enqueue(req(0, 0, Op::Potrf, 10.0, 0.0));
        // Quantum far below the request cost: multiple DRR rounds bank
        // credit until the draft covers it — no livelock.
        let w = q.collect_window(Op::Potrf, 1, 0.5);
        assert_eq!(w.len(), 1);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn cursor_rotates_between_windows() {
        let mut q = TenantQueues::new();
        for t in 0..3u32 {
            for i in 0..2 {
                q.enqueue(req(u64::from(t) * 10 + i, t, Op::Potrf, 1.0, 0.0));
            }
        }
        let w1 = q.collect_window(Op::Potrf, 2, 1.0);
        let w2 = q.collect_window(Op::Potrf, 2, 1.0);
        let w3 = q.collect_window(Op::Potrf, 2, 1.0);
        let mut tenants_first: Vec<u32> = w1.iter().map(|r| r.tenant).collect();
        tenants_first.extend(w2.iter().map(|r| r.tenant));
        tenants_first.extend(w3.iter().map(|r| r.tenant));
        // Every tenant drains fully and no tenant is served twice before
        // the ring wraps.
        assert_eq!(tenants_first, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(q.pending(), 0);
    }
}
