//! Deterministic soak harness: seeded open-loop load against one
//! service, with an offline bitwise oracle.
//!
//! The harness separates three things that must not contaminate each
//! other:
//!
//! 1. **The schedule** ([`build_schedule`]) — a pure function of
//!    [`SoakConfig`]: simulated Poisson arrivals from thousands of
//!    clients, each carrying its payload, deadline, and tenant. Because
//!    the schedule is materialized up front, the oracle can re-factor
//!    any arrival without replaying the service.
//! 2. **The run** ([`run_soak`]) — drives a fresh [`BatchService`]
//!    through the schedule (optionally installing a recoverable
//!    [`FaultPlan`] mid-stream), drains it, releases pooled memory, and
//!    snapshots every observable: responses, admission log, stats,
//!    merged recovery, fired injections, memory baselines.
//! 3. **The oracle** ([`offline_factor`] / [`verify_bitwise`]) — a
//!    fault-free, single-matrix re-factorization on a fresh device with
//!    the *same normalized options*. Option normalization pins blocking
//!    and strategy at the admission cap, so a matrix's factor bits do
//!    not depend on window composition — making "bitwise equal to a
//!    fault-free offline run" a meaningful acceptance bar for a service
//!    that windows dynamically under faults.

use rand::{Rng, RngCore};
use vbatch_dense::gen::{diag_dominant_vec, seeded_rng, spd_vec};
use vbatch_dense::Scalar;
use vbatch_gpu_sim::{Device, FaultPlan, InjectionEvent};

use vbatch_core::shard::normalized_options;
use vbatch_core::{
    getrf_vbatched_pooled, potrf_vbatched_max_ws, BatchPools, DriverWorkspace, GetrfOptions,
    PivotArray, RecoveryReport, VBatch,
};

use crate::metrics::{LatencyStats, ServeStats};
use crate::request::{Op, Rejection, RequestId, Response, ResponseStatus};
use crate::service::{BatchService, ServeConfig};

/// Parameters of one seeded soak.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// The service under test.
    pub serve: ServeConfig,
    /// Seed for arrivals, sizes, payloads, tenants, deadlines.
    pub seed: u64,
    /// Number of simulated clients; client `c` submits as tenant
    /// `c % tenants`.
    pub clients: usize,
    /// Distinct tenants.
    pub tenants: u32,
    /// Total arrivals in the schedule.
    pub requests: usize,
    /// Mean open-loop arrival rate (arrivals per simulated second);
    /// inter-arrival gaps are exponential.
    pub rate_hz: f64,
    /// Matrix orders sampled uniformly per arrival.
    pub sizes: Vec<usize>,
    /// Fraction of arrivals requesting LU instead of Cholesky.
    pub getrf_share: f64,
    /// Fraction of arrivals carrying a deadline.
    pub deadline_share: f64,
    /// Deadline slack added to the arrival time.
    pub deadline_slack_s: f64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            seed: 0x5eed,
            clients: 2000,
            tenants: 16,
            requests: 600,
            rate_hz: 200_000.0,
            sizes: vec![8, 12, 16, 24, 32, 48, 64],
            getrf_share: 0.35,
            deadline_share: 0.1,
            deadline_slack_s: 5e-3,
        }
    }
}

/// One scheduled submission.
#[derive(Clone, Debug)]
pub struct Arrival<T> {
    /// Simulated submission time.
    pub t_s: f64,
    /// Submitting client (informational; the tenant is what the service
    /// schedules by).
    pub client: usize,
    /// Tenant the client belongs to.
    pub tenant: u32,
    /// Requested factorization.
    pub op: Op,
    /// Matrix order.
    pub n: usize,
    /// Column-major payload (SPD for Cholesky, diagonally dominant for
    /// LU, so fault-free runs factor with `info == 0`).
    pub payload: Vec<T>,
    /// Optional absolute deadline.
    pub deadline_s: Option<f64>,
}

/// Builds the full arrival schedule — a pure function of `cfg`.
#[must_use]
pub fn build_schedule<T: Scalar>(cfg: &SoakConfig) -> Vec<Arrival<T>> {
    let mut rng = seeded_rng(cfg.seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        // Exponential inter-arrival: -ln(1-u)/rate, u ∈ [0,1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        t += -(1.0 - u).ln() / cfg.rate_hz.max(f64::MIN_POSITIVE);
        let client = rng.gen_range(0..cfg.clients.max(1));
        let tenant = client as u32 % cfg.tenants.max(1);
        let op = if rng.gen_f64() < cfg.getrf_share {
            Op::Getrf
        } else {
            Op::Potrf
        };
        let n = cfg.sizes[rng.gen_range(0..cfg.sizes.len().max(1))];
        let payload = match op {
            Op::Potrf => spd_vec::<T>(&mut rng, n),
            Op::Getrf => diag_dominant_vec::<T>(&mut rng, n, n),
        };
        let deadline_s = if rng.gen_f64() < cfg.deadline_share {
            Some(t + cfg.deadline_slack_s)
        } else {
            None
        };
        out.push(Arrival {
            t_s: t,
            client,
            tenant,
            op,
            n,
            payload,
            deadline_s,
        });
    }
    out
}

/// Everything observable about one soak run.
pub struct SoakOutcome<T> {
    /// Terminal responses in emission order.
    pub responses: Vec<Response<T>>,
    /// Admission log: `(request id, schedule index)` for each accepted
    /// arrival — the join key between responses and the oracle.
    pub accepted: Vec<(RequestId, usize)>,
    /// Typed refusals in arrival order, with their schedule index.
    pub rejected: Vec<(usize, Rejection)>,
    /// Final counter snapshot.
    pub stats: ServeStats,
    /// Recovery actions merged across all windows.
    pub recovery: RecoveryReport,
    /// Latency quantiles over completed requests.
    pub latency: LatencyStats,
    /// Injections the device actually fired (from `clear_fault_plan`).
    pub fired: Vec<InjectionEvent>,
    /// Device memory in use before the service existed.
    pub mem_baseline: usize,
    /// Device memory in use after drain + release.
    pub mem_after_release: usize,
    /// Arrival-clock time at the end of the drain (for sustained-rate
    /// computations).
    pub end_s: f64,
}

/// Runs one soak: submit the schedule open-loop, optionally installing
/// `fault` once `fault_after` arrivals have been submitted (0 = from
/// the start), then drain, release memory, and snapshot.
pub fn run_soak<T: Scalar>(
    cfg: &SoakConfig,
    schedule: &[Arrival<T>],
    fault: Option<FaultPlan>,
    fault_after: usize,
) -> SoakOutcome<T> {
    let dev = Device::new(cfg.serve.device.clone());
    let mem_baseline = dev.mem_in_use();
    let mut svc = BatchService::<T>::new(dev, cfg.serve.clone());
    let mut fault = fault;
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    for (idx, a) in schedule.iter().enumerate() {
        if idx == fault_after {
            if let Some(plan) = fault.take() {
                svc.device().install_fault_plan(plan);
            }
        }
        match svc.submit(a.t_s, a.tenant, a.op, a.n, a.payload.clone(), a.deadline_s) {
            Ok(id) => accepted.push((id, idx)),
            Err(r) => rejected.push((idx, r)),
        }
    }
    // A plan aimed past the end of the schedule still installs before
    // the drain (covers "fault arrives while the queue empties").
    if let Some(plan) = fault.take() {
        svc.device().install_fault_plan(plan);
    }
    let stats = svc.drain();
    let responses = svc.take_responses();
    let latency = svc.latency_stats();
    let recovery = svc.recovery().clone();
    let fired = svc.device().clear_fault_plan();
    let end_s = svc.now_s();
    svc.release_memory();
    let dev = svc.into_device();
    SoakOutcome {
        responses,
        accepted,
        rejected,
        stats,
        recovery,
        latency,
        fired,
        mem_baseline,
        mem_after_release: dev.mem_in_use(),
        end_s,
    }
}

/// Factors one matrix alone on a fresh fault-free device with the same
/// normalized options the service uses — the bitwise oracle. Returns
/// `(factor, pivots, info)`.
#[must_use]
pub fn offline_factor<T: Scalar>(
    serve: &ServeConfig,
    op: Op,
    n: usize,
    payload: &[T],
) -> (Vec<T>, Vec<usize>, i32) {
    let dev = Device::new(serve.device.clone());
    let popts = normalized_options::<T>(&dev, &serve.potrf, serve.max_n.max(1));
    let mut pools = BatchPools::new();
    let mut ws = DriverWorkspace::new();
    let mut batch = VBatch::<T>::alloc_square_pooled(&dev, &[n], &mut pools)
        .expect("oracle alloc on a fresh device");
    batch
        .upload_matrix(0, payload)
        .expect("oracle upload of a validated payload");
    let (report, pivots) = match op {
        Op::Potrf => {
            let r = potrf_vbatched_max_ws(&dev, &mut batch, n, &popts, &mut ws)
                .expect("oracle potrf on a fault-free device");
            (r, Vec::new())
        }
        Op::Getrf => {
            let gopts = GetrfOptions {
                nb_panel: serve.getrf_nb.max(1),
                recovery: serve.potrf.recovery,
            };
            let mut piv: Option<PivotArray> = None;
            let r = getrf_vbatched_pooled(&dev, &mut batch, &gopts, &mut ws, &mut piv)
                .expect("oracle getrf on a fault-free device");
            let p = piv.as_ref().map(|p| p.download(0, n)).unwrap_or_default();
            (r, p)
        }
    };
    let factor = batch.download_matrix(0);
    let info = report.info[0];
    batch.reclaim(&mut pools);
    (factor, pivots, info)
}

/// Verifies every `Factored` response in `outcome` bitwise against the
/// offline oracle. Returns the number of verified factors.
///
/// # Errors
/// A human-readable description of the first divergence.
pub fn verify_bitwise<T: Scalar>(
    cfg: &SoakConfig,
    schedule: &[Arrival<T>],
    outcome: &SoakOutcome<T>,
) -> Result<usize, String> {
    let mut verified = 0usize;
    for resp in &outcome.responses {
        if resp.status != ResponseStatus::Factored {
            continue;
        }
        let &(_, idx) = outcome
            .accepted
            .iter()
            .find(|(id, _)| *id == resp.id)
            .ok_or_else(|| format!("response {} has no admission record", resp.id))?;
        let a = &schedule[idx];
        let (factor, pivots, info) = offline_factor::<T>(&cfg.serve, a.op, a.n, &a.payload);
        if info != resp.info {
            return Err(format!(
                "req {} (sched {idx}, n={}): info {} != oracle {}",
                resp.id, a.n, resp.info, info
            ));
        }
        if pivots != resp.pivots {
            return Err(format!("req {} (sched {idx}): pivot divergence", resp.id));
        }
        if factor.len() != resp.factor.len() {
            return Err(format!("req {} (sched {idx}): factor length", resp.id));
        }
        for (k, (got, want)) in resp.factor.iter().zip(&factor).enumerate() {
            if got.to_f64().to_bits() != want.to_f64().to_bits() {
                return Err(format!(
                    "req {} (sched {idx}, n={}): factor[{k}] {:e} != oracle {:e}",
                    resp.id,
                    a.n,
                    got.to_f64(),
                    want.to_f64()
                ));
            }
        }
        verified += 1;
    }
    Ok(verified)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_config() {
        let cfg = SoakConfig {
            requests: 50,
            ..Default::default()
        };
        let a = build_schedule::<f64>(&cfg);
        let b = build_schedule::<f64>(&cfg);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.t_s.to_bits(), y.t_s.to_bits());
            assert_eq!((x.tenant, x.op, x.n), (y.tenant, y.op, y.n));
            assert!(x
                .payload
                .iter()
                .zip(&y.payload)
                .all(|(p, q)| p.to_bits() == q.to_bits()));
        }
        // Arrivals are strictly increasing (exponential gaps are > 0
        // almost surely; the generator never returns u == 1).
        assert!(a.windows(2).all(|w| w[0].t_s < w[1].t_s));
    }

    #[test]
    fn fault_free_soak_is_bitwise_reproducible_and_leak_free() {
        let cfg = SoakConfig {
            requests: 120,
            clients: 300,
            tenants: 8,
            ..Default::default()
        };
        let schedule = build_schedule::<f64>(&cfg);
        let out1 = run_soak(&cfg, &schedule, None, 0);
        let out2 = run_soak(&cfg, &schedule, None, 0);
        assert_eq!(out1.stats, out2.stats, "identical decisions");
        assert_eq!(out1.responses.len(), out2.responses.len());
        for (a, b) in out1.responses.iter().zip(&out2.responses) {
            assert_eq!((a.id, a.status), (b.id, b.status));
            assert!(a
                .factor
                .iter()
                .zip(&b.factor)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        assert_eq!(out1.mem_after_release, out1.mem_baseline, "no pool leak");
        assert!(out1.fired.is_empty());
        let n = verify_bitwise(&cfg, &schedule, &out1).expect("oracle agreement");
        assert!(n > 0, "some requests must complete");
    }
}
