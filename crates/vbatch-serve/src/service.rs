//! The batch service: online size-sorted windowing over the vbatched
//! drivers.
//!
//! [`BatchService`] is a deterministic state machine driven by two
//! clocks that never mix roles:
//!
//! * the **arrival clock** (`now_s`) — advanced only by the caller's
//!   submitted timestamps ([`BatchService::submit`] /
//!   [`BatchService::advance_to`]). Every *decision* (window trigger,
//!   deadline cancellation, load shedding) reads this clock, never a
//!   wall clock, so a seeded replay reproduces every decision bit for
//!   bit (the crate is inside the analyzer's VBA201 determinism scope);
//! * the **device clock** (`Device::now`) — charged by the simulated
//!   kernels. A dispatched window's service time is the device-clock
//!   delta across its uploads, factorization and downloads, and is fed
//!   back into the arrival timeline as server busy time (a single-server
//!   queue: one device, windows execute back to back).
//!
//! Dynamic windowing: a window dispatches when `max_window` requests are
//! pending **or** the oldest pending request has waited `max_wait_s`,
//! whichever comes first — the paper's implicit-sorting scheduler run
//! *online*, with the two SLO knobs trading latency against occupancy.
//! Dispatch goes through the zero-alloc `_ws` entry points with pooled
//! batch buffers, under [`PotrfOptions`] normalized against the
//! admission cap `max_n` — the same pinning the multi-device scheduler
//! uses, so a matrix's factor bits are a pure function of its own
//! payload, never of which neighbors shared its window. That is what
//! makes the fault-free offline replay a bitwise oracle.

use vbatch_dense::Scalar;
use vbatch_gpu_sim::{Device, DeviceConfig};

use vbatch_core::shard::{matrix_cost_s, normalized_options};
use vbatch_core::{
    getrf_vbatched_pooled, potrf_vbatched_max_ws, BatchPools, BatchReport, DriverWorkspace,
    GetrfOptions, Outcome, PivotArray, PotrfOptions, RecoveryReport, VBatch, VbatchError,
};

use crate::fair::TenantQueues;
use crate::metrics::{LatencyStats, ServeStats};
use crate::request::{Op, Rejection, Request, RequestId, Response, ResponseStatus};

/// Tuning and policy knobs of one service instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Simulated device the service runs on.
    pub device: DeviceConfig,
    /// Admission cap on the matrix order; also the anchor for option
    /// normalization (every admitted size factorizes with the same
    /// pinned blocking, strategy and window width).
    pub max_n: usize,
    /// Dispatch a window as soon as this many requests are pending.
    pub max_window: usize,
    /// Dispatch a window once the oldest pending request has waited
    /// this long (simulated seconds).
    pub max_wait_s: f64,
    /// Bounded per-tenant queue depth (admission backpressure).
    pub tenant_queue_limit: usize,
    /// Global load-shedding threshold: refuse new work once the queued
    /// device-cost would exceed this many seconds.
    pub shed_cost_s: f64,
    /// Deficit-round-robin quantum in device-seconds per tenant per
    /// round (the fairness currency).
    pub drr_quantum_s: f64,
    /// Whole-window redispatch budget after a driver error (the rung
    /// *above* the driver's own [`vbatch_core::RecoveryPolicy`] ladder).
    pub window_retries: u32,
    /// Simulated backoff charged to the device clock before window
    /// redispatch `k` (linear, like the driver's launch backoff).
    pub retry_backoff_s: f64,
    /// Base Cholesky options; normalized against `max_n` at
    /// construction.
    pub potrf: PotrfOptions,
    /// LU outer panel width (fixed so LU bits are composition-free too).
    pub getrf_nb: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            device: DeviceConfig::k40c(),
            max_n: 192,
            max_window: 64,
            max_wait_s: 2e-3,
            tenant_queue_limit: 256,
            shed_cost_s: 2e-2,
            drr_quantum_s: 2e-5,
            window_retries: 2,
            retry_backoff_s: 1e-4,
            potrf: PotrfOptions::default(),
            getrf_nb: 64,
        }
    }
}

impl ServeConfig {
    /// Modeled device cost of one request (the DRR and load-shedding
    /// currency). LU is charged at twice the Cholesky flop model
    /// (`n³/3` vs `2n³/3`); only the *relative* weights matter for
    /// fairness.
    #[must_use]
    pub fn request_cost_s<T: Scalar>(&self, op: Op, n: usize) -> f64 {
        let base = matrix_cost_s::<T>(&self.device, n);
        match op {
            Op::Potrf => base,
            Op::Getrf => 2.0 * base,
        }
    }
}

/// A long-running, multi-tenant batch-serving front end over one
/// simulated device.
pub struct BatchService<T: Scalar> {
    dev: Device,
    cfg: ServeConfig,
    popts: PotrfOptions,
    gopts: GetrfOptions,
    ws: DriverWorkspace<T>,
    pools: BatchPools<T>,
    pivot_slot: Option<PivotArray>,
    queues: TenantQueues<T>,
    now_s: f64,
    busy_until_s: f64,
    next_id: RequestId,
    responses: Vec<Response<T>>,
    latencies_s: Vec<f64>,
    stats: ServeStats,
    recovery: RecoveryReport,
}

impl<T: Scalar> BatchService<T> {
    /// Builds a service owning `dev`. Options are normalized against
    /// `cfg.max_n` once, here — the bit-identity anchor.
    #[must_use]
    pub fn new(dev: Device, cfg: ServeConfig) -> Self {
        let popts = normalized_options::<T>(&dev, &cfg.potrf, cfg.max_n.max(1));
        let gopts = GetrfOptions {
            nb_panel: cfg.getrf_nb.max(1),
            recovery: cfg.potrf.recovery,
        };
        Self {
            dev,
            cfg,
            popts,
            gopts,
            ws: DriverWorkspace::new(),
            pools: BatchPools::new(),
            pivot_slot: None,
            queues: TenantQueues::new(),
            now_s: 0.0,
            busy_until_s: 0.0,
            next_id: 0,
            responses: Vec::new(),
            latencies_s: Vec::new(),
            stats: ServeStats::default(),
            recovery: RecoveryReport::default(),
        }
    }

    /// The normalized Cholesky options every window runs with — the
    /// offline oracle must factorize with exactly these to be bitwise
    /// comparable.
    #[must_use]
    pub fn potrf_options(&self) -> &PotrfOptions {
        &self.popts
    }

    /// The LU options every window runs with.
    #[must_use]
    pub fn getrf_options(&self) -> &GetrfOptions {
        &self.gopts
    }

    /// The device the service runs on (fault plans are installed and
    /// cleared through this handle).
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Current arrival-clock time.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Requests admitted but not yet answered.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queues.pending()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Recovery actions merged across every dispatched window, with
    /// quarantined entries remapped to [`RequestId`]s. Its `injected`
    /// log enumerates exactly the faults the device fired inside
    /// dispatched windows (failed attempts included).
    #[must_use]
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Latency quantiles over every completed request so far.
    #[must_use]
    pub fn latency_stats(&self) -> LatencyStats {
        LatencyStats::compute(&self.latencies_s)
    }

    /// Hands out (and clears) the terminal responses produced since the
    /// last call.
    pub fn take_responses(&mut self) -> Vec<Response<T>> {
        std::mem::take(&mut self.responses)
    }

    /// Submits one request at simulated time `t_s` (clamped monotonic:
    /// concurrent front ends may deliver slightly out of order). On
    /// acceptance returns the [`RequestId`] its eventual [`Response`]
    /// will carry.
    ///
    /// # Errors
    /// A typed [`Rejection`]; refusals are normal service behavior and
    /// cost no device time.
    pub fn submit(
        &mut self,
        t_s: f64,
        tenant: u32,
        op: Op,
        n: usize,
        payload: Vec<T>,
        deadline_s: Option<f64>,
    ) -> Result<RequestId, Rejection> {
        self.advance_to(t_s);
        self.stats.submitted += 1;
        if n == 0 {
            self.stats.rejected_invalid += 1;
            return Err(Rejection::Invalid("zero matrix order"));
        }
        if payload.len() != n * n {
            self.stats.rejected_invalid += 1;
            return Err(Rejection::Invalid("payload length != n*n"));
        }
        if n > self.cfg.max_n {
            self.stats.rejected_invalid += 1;
            return Err(Rejection::TooLarge {
                n,
                max_n: self.cfg.max_n,
            });
        }
        let cost_s = self.cfg.request_cost_s::<T>(op, n);
        if self.queues.queued_cost_s() + cost_s > self.cfg.shed_cost_s {
            self.stats.rejected_overloaded += 1;
            return Err(Rejection::Overloaded {
                queued_cost_s: self.queues.queued_cost_s(),
                shed_cost_s: self.cfg.shed_cost_s,
            });
        }
        let depth = self.queues.depth(tenant);
        if depth >= self.cfg.tenant_queue_limit {
            self.stats.rejected_tenant_full += 1;
            return Err(Rejection::TenantQueueFull {
                tenant,
                depth,
                limit: self.cfg.tenant_queue_limit,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.stats.accepted += 1;
        self.queues.enqueue(Request {
            id,
            tenant,
            op,
            n,
            payload,
            arrival_s: self.now_s,
            deadline_s,
            cost_s,
        });
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queues.pending());
        if self.queues.queued_cost_s() > self.stats.max_queued_cost_s {
            self.stats.max_queued_cost_s = self.queues.queued_cost_s();
        }
        // Fill trigger: dispatch immediately once the window is full
        // (the server may still be busy; the window then starts at
        // `busy_until_s`, which `fire_due` accounts for).
        self.fire_due(self.now_s);
        Ok(id)
    }

    /// Advances the arrival clock to `t_s`, firing every window whose
    /// trigger (fill or `max_wait_s`) lands at or before it.
    pub fn advance_to(&mut self, t_s: f64) {
        self.fire_due(t_s);
        if t_s > self.now_s {
            self.now_s = t_s;
        }
        self.cancel_expired();
    }

    /// Dispatches until no admitted request is pending. The arrival
    /// clock advances past every remaining trigger; the returned stats
    /// snapshot is taken after the last window retires.
    pub fn drain(&mut self) -> ServeStats {
        while self.queues.pending() > 0 {
            let Some((oldest_s, _)) = self.queues.oldest() else {
                break;
            };
            let trigger = if self.queues.pending() >= self.cfg.max_window {
                self.now_s
            } else {
                oldest_s + self.cfg.max_wait_s
            };
            self.now_s = self.now_s.max(trigger).max(self.busy_until_s);
            self.cancel_expired();
            if self.queues.pending() > 0 {
                self.dispatch_window();
            }
        }
        self.stats.clone()
    }

    /// Returns all pooled device memory (driver workspace, batch pools,
    /// pivot arena) to the device — after this, `device().mem_in_use()`
    /// is back to its pre-service baseline.
    pub fn release_memory(&mut self) {
        self.ws.release();
        self.pools.trim();
        self.pivot_slot = None;
    }

    /// Consumes the service, releasing pooled memory and returning the
    /// device (for post-drain baseline assertions).
    #[must_use]
    pub fn into_device(mut self) -> Device {
        self.release_memory();
        self.dev
    }

    /// Fires every window whose effective dispatch time (trigger
    /// clamped by server busyness) is at or before `horizon_s`.
    fn fire_due(&mut self, horizon_s: f64) {
        loop {
            self.cancel_expired();
            let Some((oldest_s, _)) = self.queues.oldest() else {
                return;
            };
            let trigger = if self.queues.pending() >= self.cfg.max_window {
                self.now_s
            } else {
                oldest_s + self.cfg.max_wait_s
            };
            let fire = trigger.max(self.busy_until_s);
            if fire > horizon_s {
                return;
            }
            self.now_s = self.now_s.max(fire);
            self.cancel_expired();
            if self.queues.pending() > 0 {
                self.dispatch_window();
            }
        }
    }

    /// Cancels queued requests whose deadline passed (before dispatch —
    /// they never cost device time) and answers them `Expired`.
    fn cancel_expired(&mut self) {
        for r in self.queues.expire(self.now_s) {
            self.stats.expired += 1;
            let finish = r.deadline_s.unwrap_or(self.now_s);
            self.responses.push(Response {
                id: r.id,
                tenant: r.tenant,
                op: r.op,
                n: r.n,
                status: ResponseStatus::Expired,
                info: 0,
                factor: Vec::new(),
                pivots: Vec::new(),
                outcome: Outcome::Clean,
                arrival_s: r.arrival_s,
                finish_s: finish,
            });
        }
    }

    /// Builds one window by DRR and executes it with the service-level
    /// retry ladder on top of the driver's own recovery policy.
    fn dispatch_window(&mut self) {
        let Some((_, op)) = self.queues.oldest() else {
            return;
        };
        let window = self
            .queues
            .collect_window(op, self.cfg.max_window, self.cfg.drr_quantum_s);
        if window.is_empty() {
            return;
        }
        self.stats.windows += 1;
        let mut attempt = 0u32;
        loop {
            let ev0 = if self.dev.fault_active() {
                self.dev.fault_events().len()
            } else {
                0
            };
            match self.run_window(op, &window) {
                Ok((report, factors, pivots, service_s)) => {
                    self.finish_window(&window, &report, factors, pivots, service_s, attempt);
                    return;
                }
                Err(err) => {
                    // Keep the merged injection log exact even for the
                    // attempt that failed: the driver's report (which
                    // normally carries them) never came back.
                    if self.dev.fault_active() {
                        let ev = self.dev.fault_events();
                        if ev0 <= ev.len() {
                            self.recovery.injected.extend(ev[ev0..].iter().cloned());
                        }
                    }
                    if attempt < self.cfg.window_retries {
                        attempt += 1;
                        self.stats.window_retries += 1;
                        // Honest backoff on the device timeline, like
                        // the driver's launch-retry rung.
                        self.dev
                            .advance_time(self.cfg.retry_backoff_s * f64::from(attempt), 0.0);
                    } else {
                        self.stats.window_failures += 1;
                        self.fail_window(&window, &err);
                        return;
                    }
                }
            }
        }
    }

    /// One attempt: pooled batch build, payload upload, driver run,
    /// factor download, pool reclaim. Every outcome — success or error —
    /// returns the batch buffers to the pools.
    #[allow(clippy::type_complexity)]
    fn run_window(
        &mut self,
        op: Op,
        window: &[Request<T>],
    ) -> Result<(BatchReport, Vec<Vec<T>>, Vec<Vec<usize>>, f64), VbatchError> {
        let t0 = self.dev.now();
        let sizes: Vec<usize> = window.iter().map(|r| r.n).collect();
        let wmax = sizes.iter().copied().max().unwrap_or(0);
        let mut batch = VBatch::<T>::alloc_square_pooled(&self.dev, &sizes, &mut self.pools)?;
        let payload_bytes: usize = window
            .iter()
            .map(|r| r.payload.len() * std::mem::size_of::<T>())
            .sum();
        type Attempt<T> = Result<(BatchReport, Vec<Vec<T>>, Vec<Vec<usize>>), VbatchError>;
        let result: Attempt<T> = (|| {
            for (k, r) in window.iter().enumerate() {
                batch.upload_matrix(k, &r.payload)?;
            }
            // upload_matrix bypasses the PCIe model; charge the wire
            // honestly so service time includes the transfer.
            self.dev.copy_htod_bytes(payload_bytes);
            let report = match op {
                Op::Potrf => {
                    potrf_vbatched_max_ws(&self.dev, &mut batch, wmax, &self.popts, &mut self.ws)?
                }
                Op::Getrf => getrf_vbatched_pooled(
                    &self.dev,
                    &mut batch,
                    &self.gopts,
                    &mut self.ws,
                    &mut self.pivot_slot,
                )?,
            };
            let factors: Vec<Vec<T>> = (0..batch.count())
                .map(|k| batch.download_matrix(k))
                .collect();
            self.dev.copy_dtoh_bytes(payload_bytes);
            let pivots: Vec<Vec<usize>> = match op {
                Op::Potrf => vec![Vec::new(); window.len()],
                Op::Getrf => {
                    let arena = self.pivot_slot.as_ref().expect("getrf filled the slot");
                    window
                        .iter()
                        .enumerate()
                        .map(|(k, r)| arena.download(k, r.n))
                        .collect()
                }
            };
            Ok((report, factors, pivots))
        })();
        batch.reclaim(&mut self.pools);
        let (report, factors, pivots) = result?;
        Ok((report, factors, pivots, self.dev.now() - t0))
    }

    /// Emits terminal responses for a completed window and merges its
    /// recovery record.
    fn finish_window(
        &mut self,
        window: &[Request<T>],
        report: &BatchReport,
        factors: Vec<Vec<T>>,
        pivots: Vec<Vec<usize>>,
        service_s: f64,
        attempts: u32,
    ) {
        let finish = self.now_s + service_s;
        self.busy_until_s = finish;
        let mut outcome = report.recovery.outcome();
        if attempts > 0 && outcome == Outcome::Clean {
            // A redispatched window recovered even if the final attempt
            // itself was clean.
            outcome = Outcome::Recovered;
        }
        let rec = &report.recovery;
        self.recovery.retried_launches += rec.retried_launches;
        self.recovery.retried_allocs += rec.retried_allocs;
        self.recovery.window_splits += rec.window_splits;
        self.recovery.workspace_releases += rec.workspace_releases;
        self.recovery.scrub_passes += rec.scrub_passes;
        self.recovery.injected.extend(rec.injected.iter().cloned());
        for (k, q) in rec.quarantined.iter().map(|&k| (k, &window[k])) {
            debug_assert!(report.info[k] < 0);
            let _ = q;
            self.recovery.quarantined.push(window[k].id as usize);
        }
        for ((k, r), (factor, piv)) in window
            .iter()
            .enumerate()
            .zip(factors.into_iter().zip(pivots))
        {
            let info = report.info[k];
            let status = if info < 0 {
                ResponseStatus::Quarantined
            } else {
                ResponseStatus::Factored
            };
            self.stats.completed += 1;
            self.latencies_s.push(finish - r.arrival_s);
            self.responses.push(Response {
                id: r.id,
                tenant: r.tenant,
                op: r.op,
                n: r.n,
                status,
                info,
                factor,
                pivots: piv,
                outcome,
                arrival_s: r.arrival_s,
                finish_s: finish,
            });
        }
    }

    /// Emits `Failed` responses after the retry budget is spent — the
    /// window's requests get a terminal answer, the service stays up.
    fn fail_window(&mut self, window: &[Request<T>], err: &VbatchError) {
        let _ = err;
        for r in window {
            self.responses.push(Response {
                id: r.id,
                tenant: r.tenant,
                op: r.op,
                n: r.n,
                status: ResponseStatus::Failed,
                info: 0,
                factor: Vec::new(),
                pivots: Vec::new(),
                outcome: Outcome::Degraded,
                arrival_s: r.arrival_s,
                finish_s: self.now_s,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use vbatch_dense::gen::{diag_dominant_vec, seeded_rng, spd_vec};

    fn svc(cfg: ServeConfig) -> BatchService<f64> {
        BatchService::new(Device::new(cfg.device.clone()), cfg)
    }

    fn spd(seed: u64, n: usize) -> Vec<f64> {
        spd_vec::<f64>(&mut seeded_rng(seed), n)
    }

    #[test]
    fn fill_trigger_dispatches_at_max_window() {
        let mut s = svc(ServeConfig {
            max_window: 4,
            max_wait_s: 1.0,
            ..Default::default()
        });
        for i in 0..3 {
            s.submit(0.0, 0, Op::Potrf, 8, spd(i, 8), None).unwrap();
        }
        assert_eq!(s.stats().windows, 0, "below fill, inside max_wait");
        s.submit(0.0, 0, Op::Potrf, 8, spd(9, 8), None).unwrap();
        assert_eq!(s.stats().windows, 1, "fill trigger fires immediately");
        assert_eq!(s.pending(), 0);
        let resp = s.take_responses();
        assert_eq!(resp.len(), 4);
        assert!(resp.iter().all(|r| r.status == ResponseStatus::Factored));
        assert!(resp.iter().all(|r| r.finish_s > r.arrival_s));
    }

    #[test]
    fn max_wait_trigger_dispatches_partial_window() {
        let mut s = svc(ServeConfig {
            max_window: 64,
            max_wait_s: 1e-3,
            ..Default::default()
        });
        s.submit(0.0, 0, Op::Potrf, 8, spd(1, 8), None).unwrap();
        s.advance_to(0.5e-3);
        assert_eq!(s.stats().windows, 0);
        s.advance_to(2e-3);
        assert_eq!(s.stats().windows, 1, "max_wait fired");
        let resp = s.take_responses();
        assert_eq!(resp.len(), 1);
        // Queue wait is at least max_wait.
        assert!(resp[0].latency_s() >= 1e-3);
    }

    #[test]
    fn overload_sheds_with_typed_rejection() {
        let cfg = ServeConfig {
            max_window: 1024,
            max_wait_s: 1.0,
            shed_cost_s: 10.0 * ServeConfig::default().request_cost_s::<f64>(Op::Potrf, 32),
            tenant_queue_limit: 10_000,
            ..Default::default()
        };
        let mut s = svc(cfg);
        let mut shed = 0;
        for i in 0..64 {
            match s.submit(0.0, 0, Op::Potrf, 32, spd(i, 32), None) {
                Ok(_) => {}
                Err(Rejection::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert!(shed > 0, "must shed above the cost ceiling");
        assert_eq!(s.stats().rejected_overloaded, shed);
        assert_eq!(s.stats().accepted, 64 - shed);
        // Shedding is a refusal, not a failure: draining completes all
        // accepted requests.
        s.drain();
        assert_eq!(s.stats().completed, 64 - shed);
    }

    #[test]
    fn tenant_queue_bound_is_per_tenant() {
        let cfg = ServeConfig {
            max_window: 1024,
            max_wait_s: 1.0,
            tenant_queue_limit: 4,
            shed_cost_s: 1e9,
            ..Default::default()
        };
        let mut s = svc(cfg);
        for i in 0..4 {
            s.submit(0.0, 7, Op::Potrf, 8, spd(i, 8), None).unwrap();
        }
        assert!(matches!(
            s.submit(0.0, 7, Op::Potrf, 8, spd(99, 8), None),
            Err(Rejection::TenantQueueFull { tenant: 7, .. })
        ));
        // A different tenant is unaffected.
        s.submit(0.0, 8, Op::Potrf, 8, spd(5, 8), None).unwrap();
        s.drain();
        assert_eq!(s.stats().completed, 5);
    }

    #[test]
    fn deadline_cancels_before_dispatch() {
        let mut s = svc(ServeConfig {
            max_window: 64,
            max_wait_s: 1e-3,
            ..Default::default()
        });
        s.submit(0.0, 0, Op::Potrf, 8, spd(1, 8), Some(0.2e-3))
            .unwrap();
        s.submit(0.0, 0, Op::Potrf, 8, spd(2, 8), Some(10.0))
            .unwrap();
        let launches_before = s.device().launch_count();
        s.drain();
        let resp = s.take_responses();
        assert_eq!(resp.len(), 2);
        let expired: Vec<_> = resp
            .iter()
            .filter(|r| r.status == ResponseStatus::Expired)
            .collect();
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].id, 0);
        assert!(expired[0].factor.is_empty());
        assert_eq!(s.stats().expired, 1);
        assert_eq!(s.stats().completed, 1);
        assert!(
            s.device().launch_count() > launches_before,
            "the surviving request still ran"
        );
    }

    #[test]
    fn invalid_and_oversized_are_typed() {
        let mut s = svc(ServeConfig::default());
        assert!(matches!(
            s.submit(0.0, 0, Op::Potrf, 0, vec![], None),
            Err(Rejection::Invalid(_))
        ));
        assert!(matches!(
            s.submit(0.0, 0, Op::Potrf, 8, vec![0.0; 63], None),
            Err(Rejection::Invalid(_))
        ));
        assert!(matches!(
            s.submit(0.0, 0, Op::Potrf, 4096, vec![0.0; 4096 * 4096], None),
            Err(Rejection::TooLarge { .. })
        ));
        assert_eq!(s.stats().rejected_invalid, 3);
    }

    #[test]
    fn mixed_ops_split_into_per_op_windows_and_verify() {
        let mut s = svc(ServeConfig {
            max_window: 8,
            max_wait_s: 1e-4,
            ..Default::default()
        });
        let mut rng = seeded_rng(42);
        let mut inputs = Vec::new();
        for i in 0..8u64 {
            let n = 6 + (i as usize % 3) * 5;
            if i % 2 == 0 {
                let m = spd_vec::<f64>(&mut rng, n);
                let id = s.submit(0.0, (i % 3) as u32, Op::Potrf, n, m.clone(), None);
                inputs.push((id.unwrap(), Op::Potrf, n, m));
            } else {
                let m = diag_dominant_vec::<f64>(&mut rng, n, n);
                let id = s.submit(0.0, (i % 3) as u32, Op::Getrf, n, m.clone(), None);
                inputs.push((id.unwrap(), Op::Getrf, n, m));
            }
        }
        s.drain();
        let resp = s.take_responses();
        assert_eq!(resp.len(), 8);
        assert!(s.stats().windows >= 2, "at least one window per op");
        for r in &resp {
            assert_eq!(r.status, ResponseStatus::Factored, "req {}", r.id);
            assert_eq!(r.info, 0);
            let (_, op, n, _) = inputs.iter().find(|(id, ..)| *id == r.id).unwrap();
            assert_eq!(r.op, *op);
            assert_eq!(r.factor.len(), n * n);
            if *op == Op::Getrf {
                assert_eq!(r.pivots.len(), *n);
            }
        }
        // Use the rng once more so the seed isn't "unused" lint bait.
        let _ = rng.gen_range(0..2);
    }

    #[test]
    fn pool_memory_returns_to_baseline_after_release() {
        let cfg = ServeConfig {
            max_window: 8,
            max_wait_s: 1e-4,
            ..Default::default()
        };
        let dev = Device::new(cfg.device.clone());
        let base = dev.mem_in_use();
        let mut s = BatchService::<f64>::new(dev, cfg);
        for i in 0..20 {
            let n = 8 + (i as usize % 4) * 8;
            s.submit(0.0, (i % 2) as u32, Op::Potrf, n, spd(i, n), None)
                .unwrap();
        }
        s.drain();
        assert!(s.device().mem_in_use() > base, "pools are warm");
        s.release_memory();
        let dev = s.into_device();
        assert_eq!(dev.mem_in_use(), base, "all pooled memory returned");
    }
}
