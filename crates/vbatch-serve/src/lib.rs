//! vbatch-serve: a resilient multi-tenant batch-serving front end over
//! the vbatched factorization drivers.
//!
//! The paper's variable-size batched kernels assume someone hands them a
//! batch. This crate is that someone: a long-running ingestion layer
//! that accepts per-matrix `potrf`/`getrf` requests from many concurrent
//! clients and coalesces them into size-sorted vbatched windows, run
//! through the zero-alloc workspace entry points under the recovery
//! ladder. The serving policies:
//!
//! * **Dynamic windowing** — dispatch on `max_wait` deadline or
//!   `max_window` fill, whichever first ([`ServeConfig`]);
//! * **Admission control** — bounded per-tenant queues and a global
//!   device-cost load-shedding ceiling, refused with typed
//!   [`Rejection`]s, never panics;
//! * **Fairness** — deficit round-robin across tenants with the device
//!   cost model as the currency;
//! * **Deadlines** — per-request timeout cancellation *before* dispatch;
//! * **Resilience** — driver-level recovery plus service-level window
//!   redispatch with simulated backoff; quarantined matrices degrade
//!   their own response ([`ResponseStatus::Quarantined`]) instead of
//!   failing the window;
//! * **Determinism** — simulated clocks only; a seeded soak
//!   ([`soak`]) replays bit-identically and its accepted responses match
//!   a fault-free offline oracle bit for bit.
//!
//! [`BatchService`] is the deterministic single-threaded core;
//! [`ServeExecutor`] is the audited threaded shell for concurrent
//! clients.

pub mod exec;
pub mod fair;
pub mod metrics;
pub mod request;
pub mod service;
pub mod soak;

pub use exec::{ClientHandle, ServeExecutor};
pub use metrics::{LatencyStats, ServeStats};
pub use request::{Op, Rejection, RequestId, Response, ResponseStatus};
pub use service::{BatchService, ServeConfig};
pub use soak::{
    build_schedule, offline_factor, run_soak, verify_bitwise, Arrival, SoakConfig, SoakOutcome,
};
