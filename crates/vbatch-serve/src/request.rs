//! Request/response surface of the serving front end.
//!
//! One request is one matrix — the request-per-matrix API shape of the
//! batched-GEMM interface work (PAPERS.md, Jhurani/Mullowney): a tenant
//! submits a single `n × n` payload plus an operation, and receives the
//! factor (or a typed refusal) back. The service owns coalescing
//! requests into size-sorted vbatched windows; clients never see the
//! batching.

use vbatch_core::Outcome;

/// Identifier the service assigns to every *accepted* request, in
/// admission order.
pub type RequestId = u64;

/// The factorization a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Cholesky (`potrf`) of an SPD matrix.
    Potrf,
    /// LU with partial pivoting (`getrf`).
    Getrf,
}

/// Typed refusal at admission. Every variant is a *normal* overload or
/// validation outcome — the service never panics a client away.
#[derive(Clone, Debug, PartialEq)]
pub enum Rejection {
    /// The global load-shedding threshold would be exceeded: the queued
    /// work already represents `queued_cost_s` seconds of device time
    /// against a ceiling of `shed_cost_s`. Open-loop clients must slow
    /// down or retry later.
    Overloaded {
        /// Device-seconds of work queued at the time of the refusal.
        queued_cost_s: f64,
        /// The configured shedding ceiling in device-seconds.
        shed_cost_s: f64,
    },
    /// This tenant's bounded queue is full (per-tenant backpressure —
    /// one flooding tenant cannot consume the global budget).
    TenantQueueFull {
        /// The refusing tenant.
        tenant: u32,
        /// Requests the tenant already has queued.
        depth: usize,
        /// The per-tenant queue bound.
        limit: usize,
    },
    /// The matrix order exceeds the service's admission cap (the cap
    /// also anchors option normalization, so every admitted size has a
    /// composition-independent factorization).
    TooLarge {
        /// Requested order.
        n: usize,
        /// Largest admissible order.
        max_n: usize,
    },
    /// Malformed request (zero order, payload/extent mismatch, …).
    Invalid(&'static str),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Overloaded {
                queued_cost_s,
                shed_cost_s,
            } => write!(
                f,
                "overloaded: {queued_cost_s:.3e}s of work queued against a \
                 {shed_cost_s:.3e}s shedding ceiling"
            ),
            Rejection::TenantQueueFull {
                tenant,
                depth,
                limit,
            } => write!(f, "tenant {tenant} queue full ({depth}/{limit})"),
            Rejection::TooLarge { n, max_n } => {
                write!(f, "order {n} exceeds the admission cap {max_n}")
            }
            Rejection::Invalid(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for Rejection {}

/// How an accepted request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Factorization completed; `factor` (and `pivots` for LU) hold the
    /// result and `info` is the LAPACK code (0, or positive breakdown
    /// column for a non-SPD/singular input).
    Factored,
    /// The runtime quarantined the matrix (negative `info`): its window
    /// degraded gracefully instead of failing every neighbor.
    Quarantined,
    /// The per-request deadline passed while the request was still
    /// queued; it was cancelled before dispatch and never cost device
    /// time.
    Expired,
    /// The window failed even after the service-level retry budget
    /// (unrecoverable device error) — reported, never panicked.
    Failed,
}

/// One accepted request, inside the service.
#[derive(Clone, Debug)]
pub(crate) struct Request<T> {
    pub id: RequestId,
    pub tenant: u32,
    pub op: Op,
    pub n: usize,
    pub payload: Vec<T>,
    pub arrival_s: f64,
    pub deadline_s: Option<f64>,
    /// Model cost of this matrix on the device (the DRR currency).
    pub cost_s: f64,
}

/// The terminal answer for one accepted request.
#[derive(Clone, Debug)]
pub struct Response<T> {
    /// The id returned by `submit`.
    pub id: RequestId,
    /// Submitting tenant.
    pub tenant: u32,
    /// Requested operation.
    pub op: Op,
    /// Matrix order.
    pub n: usize,
    /// How the request ended.
    pub status: ResponseStatus,
    /// Per-matrix LAPACK `info` (negative = quarantined by the runtime).
    pub info: i32,
    /// Column-major factor (empty for `Expired`/`Failed`).
    pub factor: Vec<T>,
    /// LU pivots (empty unless `op == Getrf` and the window completed).
    pub pivots: Vec<usize>,
    /// Health of the window that carried this request.
    pub outcome: Outcome,
    /// Simulated arrival time.
    pub arrival_s: f64,
    /// Simulated completion (or cancellation) time.
    pub finish_s: f64,
}

impl<T> Response<T> {
    /// Queue wait + service time in simulated seconds.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_display_is_informative() {
        let r = Rejection::Overloaded {
            queued_cost_s: 1.5e-3,
            shed_cost_s: 1e-3,
        };
        assert!(r.to_string().contains("overloaded"));
        let r = Rejection::TenantQueueFull {
            tenant: 7,
            depth: 64,
            limit: 64,
        };
        assert!(r.to_string().contains("tenant 7"));
        assert!(Rejection::TooLarge { n: 900, max_n: 512 }
            .to_string()
            .contains("900"));
        assert!(Rejection::Invalid("zero order")
            .to_string()
            .contains("zero"));
    }

    #[test]
    fn latency_is_finish_minus_arrival() {
        let r = Response::<f64> {
            id: 1,
            tenant: 0,
            op: Op::Potrf,
            n: 4,
            status: ResponseStatus::Factored,
            info: 0,
            factor: vec![],
            pivots: vec![],
            outcome: Outcome::Clean,
            arrival_s: 2.0,
            finish_s: 2.5,
        };
        assert!((r.latency_s() - 0.5).abs() < 1e-12);
    }
}
