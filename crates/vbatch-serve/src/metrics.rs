//! Service-side accounting: latency quantiles and admission counters.
//!
//! Everything here is computed from simulated timestamps — the decision
//! path never reads a wall clock, so two runs of the same seeded load
//! produce identical quantiles bit for bit.

/// Latency quantiles over a set of completed requests (simulated
/// seconds). Quantiles use the nearest-rank method on a sorted copy, so
/// they are exact and deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub samples: usize,
    /// Median latency.
    pub p50_s: f64,
    /// 99th-percentile latency.
    pub p99_s: f64,
    /// Mean latency.
    pub mean_s: f64,
    /// Worst observed latency.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes the stats from unsorted samples. Empty input yields the
    /// all-zero record (`samples == 0` distinguishes it).
    #[must_use]
    pub fn compute(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |q: f64| -> f64 {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        Self {
            samples: sorted.len(),
            p50_s: rank(0.50),
            p99_s: rank(0.99),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_s: sorted[sorted.len() - 1],
        }
    }
}

/// Monotonic counters the service keeps; one snapshot is returned with
/// every drain so harnesses can assert the overload story in numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// `submit` calls, accepted or not.
    pub submitted: u64,
    /// Requests admitted to a tenant queue.
    pub accepted: u64,
    /// Requests answered with a factor (including quarantined ones —
    /// they got a terminal response).
    pub completed: u64,
    /// Refusals by the global load-shedding threshold.
    pub rejected_overloaded: u64,
    /// Refusals by a full per-tenant queue.
    pub rejected_tenant_full: u64,
    /// Refusals for malformed or oversized requests.
    pub rejected_invalid: u64,
    /// Accepted requests cancelled at their deadline before dispatch.
    pub expired: u64,
    /// Vbatched windows dispatched.
    pub windows: u64,
    /// Whole-window redispatches after a driver error.
    pub window_retries: u64,
    /// Windows that failed even after the retry budget.
    pub window_failures: u64,
    /// Largest pending-request count ever observed.
    pub max_queue_depth: usize,
    /// Largest queued device-cost ever observed (seconds).
    pub max_queued_cost_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = LatencyStats::compute(&samples);
        assert_eq!(s.samples, 100);
        assert!((s.p50_s - 50.0).abs() < 1e-12);
        assert!((s.p99_s - 99.0).abs() < 1e-12);
        assert!((s.max_s - 100.0).abs() < 1e-12);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_and_empty() {
        let s = LatencyStats::compute(&[0.25]);
        assert_eq!(
            (s.samples, s.p50_s, s.p99_s, s.max_s),
            (1, 0.25, 0.25, 0.25)
        );
        let e = LatencyStats::compute(&[]);
        assert_eq!(e.samples, 0);
        assert_eq!(e.p99_s, 0.0);
    }

    #[test]
    fn order_invariant() {
        let a = LatencyStats::compute(&[3.0, 1.0, 2.0]);
        let b = LatencyStats::compute(&[1.0, 2.0, 3.0]);
        assert_eq!(a.p50_s.to_bits(), b.p50_s.to_bits());
        assert_eq!(a.p99_s.to_bits(), b.p99_s.to_bits());
    }
}
