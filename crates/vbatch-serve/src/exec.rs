//! Threaded ingestion front: many concurrent clients, one dispatcher.
//!
//! [`BatchService`] is single-threaded by design (its determinism
//! contract is a total order over submissions). This module provides the
//! concurrency shell around it: a [`ServeExecutor`] owns one dispatcher
//! thread that holds the service (and therefore the [`Device`]), and
//! hands out cloneable [`ClientHandle`]s whose `submit` is safe to call
//! from any number of client threads.
//!
//! The mailbox is a `Mutex<VecDeque>` + `Condvar` pair — no channels, no
//! async runtime — so the dispatcher imposes a single arrival order on
//! racing clients and then replays it through the deterministic service.
//! Two runs with the same *arrival order* are bit-identical; when client
//! threads race, the interleaving picks the order, which is exactly why
//! the soak harness drives the service directly and uses this executor
//! only for liveness/robustness coverage.
//!
//! ## Threading audit (VBA202 waivers below)
//!
//! The repo routes host parallelism through `dense::pool::WorkerPool`;
//! this module is the one audited exception, because the dispatcher is
//! not a data-parallel worker: it is a long-lived *owner* thread (the
//! actor pattern) that must outlive any one call. The audit:
//!
//! * exactly one thread is created per executor, named, and stored —
//!   never detached;
//! * [`ServeExecutor::finish`] closes the mailbox, wakes the dispatcher,
//!   and joins it; `Drop` does the same for abandoned executors, so no
//!   executor can leak its thread;
//! * clients block only on their own reply slot; the dispatcher never
//!   blocks on a client, so there is no lock cycle (mailbox lock and
//!   reply locks are never held together by the same party);
//! * a client whose reply slot outlives a dispatcher panic gets
//!   [`Rejection::Invalid`] instead of hanging (poisoned-mutex paths
//!   resolve, never wedge).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use vbatch_dense::Scalar;

use crate::request::{Op, Rejection, RequestId, Response};
use crate::service::BatchService;
#[cfg(test)]
use crate::service::ServeConfig;

/// A submission envelope traveling client → dispatcher.
struct SubmitMsg<T> {
    t_s: f64,
    tenant: u32,
    op: Op,
    n: usize,
    payload: Vec<T>,
    deadline_s: Option<f64>,
    reply: Arc<ReplySlot>,
}

enum Msg<T> {
    Submit(SubmitMsg<T>),
    AdvanceTo(f64),
}

/// One-shot rendezvous for an admission verdict.
struct ReplySlot {
    verdict: Mutex<Option<Result<RequestId, Rejection>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Self {
        Self {
            verdict: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn deliver(&self, v: Result<RequestId, Rejection>) {
        let mut slot = self
            .verdict
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Some(v);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<RequestId, Rejection> {
        let mut slot = self
            .verdict
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

struct MailboxState<T> {
    msgs: VecDeque<Msg<T>>,
    closed: bool,
}

struct Mailbox<T> {
    state: Mutex<MailboxState<T>>,
    arrived: Condvar,
}

impl<T> Mailbox<T> {
    fn push(&self, m: Msg<T>) -> bool {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.closed {
            return false;
        }
        st.msgs.push_back(m);
        self.arrived.notify_one();
        true
    }
}

/// Cloneable client-side handle: `submit` from any thread.
pub struct ClientHandle<T> {
    inbox: Arc<Mailbox<T>>,
}

impl<T> Clone for ClientHandle<T> {
    fn clone(&self) -> Self {
        Self {
            inbox: Arc::clone(&self.inbox),
        }
    }
}

impl<T: Scalar> ClientHandle<T> {
    /// Submits one request through the dispatcher and blocks for the
    /// admission verdict (acceptance or a typed [`Rejection`]); the
    /// factor itself is collected later via [`ServeExecutor::finish`].
    ///
    /// # Errors
    /// The service's typed [`Rejection`]s, plus `Invalid("executor shut
    /// down")` if the dispatcher is gone — a late client is refused,
    /// never wedged.
    pub fn submit(
        &self,
        t_s: f64,
        tenant: u32,
        op: Op,
        n: usize,
        payload: Vec<T>,
        deadline_s: Option<f64>,
    ) -> Result<RequestId, Rejection> {
        let reply = Arc::new(ReplySlot::new());
        let sent = self.inbox.push(Msg::Submit(SubmitMsg {
            t_s,
            tenant,
            op,
            n,
            payload,
            deadline_s,
            reply: Arc::clone(&reply),
        }));
        if !sent {
            return Err(Rejection::Invalid("executor shut down"));
        }
        reply.wait()
    }

    /// Forwards an arrival-clock advance (fires due windows).
    pub fn advance_to(&self, t_s: f64) {
        let _ = self.inbox.push(Msg::AdvanceTo(t_s));
    }
}

/// What the dispatcher thread hands back when it drains and exits: the
/// service (for stats/memory assertions) plus every terminal response.
type Drained<T> = (BatchService<T>, Vec<Response<T>>);

/// Owns the dispatcher thread and, through it, the [`BatchService`].
pub struct ServeExecutor<T: Scalar> {
    inbox: Arc<Mailbox<T>>,
    dispatcher: Option<thread::JoinHandle<Drained<T>>>,
}

impl<T: Scalar> ServeExecutor<T> {
    /// Spawns the dispatcher thread around `service`.
    ///
    /// # Panics
    /// Only if the OS refuses to spawn a thread.
    #[must_use]
    pub fn start(service: BatchService<T>) -> Self {
        let inbox = Arc::new(Mailbox {
            state: Mutex::new(MailboxState {
                msgs: VecDeque::new(),
                closed: false,
            }),
            arrived: Condvar::new(),
        });
        let rx = Arc::clone(&inbox);
        // analyze:allow(VBA202): single audited owner thread (actor pattern), named, joined in finish()/Drop — see the module-level threading audit
        let dispatcher = thread::Builder::new()
            .name("vbatch-serve-dispatch".into())
            .spawn(move || dispatch_loop(&rx, service))
            .expect("spawn vbatch-serve dispatcher");
        Self {
            inbox,
            dispatcher: Some(dispatcher),
        }
    }

    /// A new client-side handle.
    #[must_use]
    pub fn handle(&self) -> ClientHandle<T> {
        ClientHandle {
            inbox: Arc::clone(&self.inbox),
        }
    }

    /// Closes admission, drains every pending window, joins the
    /// dispatcher, and returns the service (for stats/memory
    /// assertions) together with every terminal [`Response`].
    ///
    /// # Panics
    /// Propagates a dispatcher-thread panic (the service itself never
    /// panics on refusals, faults, or overload — a panic here is a bug).
    #[must_use]
    pub fn finish(mut self) -> Drained<T> {
        self.close();
        let handle = self
            .dispatcher
            .take()
            .expect("finish() consumes self; the handle is present");
        match handle.join() {
            Ok(out) => out,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    fn close(&self) {
        let mut st = self
            .inbox
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.closed = true;
        self.inbox.arrived.notify_all();
    }
}

impl<T: Scalar> Drop for ServeExecutor<T> {
    fn drop(&mut self) {
        // An executor abandoned without finish() still closes the
        // mailbox and joins — the dispatcher thread can never leak.
        self.close();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

/// The dispatcher body: pop messages in mailbox order, feed the
/// service, answer admission verdicts; on close, drain and hand the
/// service back.
fn dispatch_loop<T: Scalar>(inbox: &Mailbox<T>, mut service: BatchService<T>) -> Drained<T> {
    loop {
        let msg = {
            let mut st = inbox
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(m) = st.msgs.pop_front() {
                    break Some(m);
                }
                if st.closed {
                    break None;
                }
                st = inbox
                    .arrived
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match msg {
            Some(Msg::Submit(m)) => {
                let verdict = service.submit(m.t_s, m.tenant, m.op, m.n, m.payload, m.deadline_s);
                m.reply.deliver(verdict);
            }
            Some(Msg::AdvanceTo(t)) => service.advance_to(t),
            None => break,
        }
    }
    service.drain();
    let responses = service.take_responses();
    (service, responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ResponseStatus;
    use vbatch_dense::gen::{seeded_rng, spd_vec};
    use vbatch_gpu_sim::Device;

    fn executor(cfg: ServeConfig) -> ServeExecutor<f64> {
        let dev = Device::new(cfg.device.clone());
        ServeExecutor::start(BatchService::new(dev, cfg))
    }

    #[test]
    fn concurrent_clients_all_get_verdicts_and_factors() {
        let exec = executor(ServeConfig {
            max_window: 16,
            max_wait_s: 1e-3,
            shed_cost_s: 1e9,
            ..Default::default()
        });
        let threads: Vec<_> = (0..8u64)
            .map(|c| {
                let h = exec.handle();
                thread::spawn(move || {
                    let n = 8 + (c as usize % 3) * 4;
                    let m = spd_vec::<f64>(&mut seeded_rng(c), n);
                    h.submit(0.0, (c % 4) as u32, Op::Potrf, n, m, None)
                })
            })
            .collect();
        let mut ids = Vec::new();
        for t in threads {
            ids.push(t.join().unwrap().expect("accepted"));
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "every client got a distinct id");
        let (svc, responses) = exec.finish();
        assert_eq!(responses.len(), 8);
        assert!(responses
            .iter()
            .all(|r| r.status == ResponseStatus::Factored && r.info == 0));
        assert_eq!(svc.stats().completed, 8);
    }

    #[test]
    fn late_submit_after_finish_is_refused_not_wedged() {
        let exec = executor(ServeConfig::default());
        let h = exec.handle();
        let (_, responses) = exec.finish();
        assert!(responses.is_empty());
        let m = spd_vec::<f64>(&mut seeded_rng(1), 8);
        assert!(matches!(
            h.submit(0.0, 0, Op::Potrf, 8, m, None),
            Err(Rejection::Invalid(_))
        ));
    }

    #[test]
    fn drop_without_finish_joins_the_dispatcher() {
        let exec = executor(ServeConfig::default());
        let h = exec.handle();
        let m = spd_vec::<f64>(&mut seeded_rng(2), 8);
        h.submit(0.0, 0, Op::Potrf, 8, m, None).unwrap();
        drop(exec); // must not hang or leak the thread
        assert!(matches!(
            h.submit(1.0, 0, Op::Potrf, 8, vec![0.0; 64], None),
            Err(Rejection::Invalid(_))
        ));
    }
}
