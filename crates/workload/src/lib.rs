//! Workload generation for variable-size batched computation.
//!
//! The paper's test cases draw matrix sizes from two pseudo-random
//! generators (§IV-B): a uniform distribution over `[1, Nmax]` and a
//! Gaussian centered at `⌊Nmax/2⌋` clamped to the same interval
//! (Fig. 3). This crate reproduces those generators (seeded, so every
//! experiment is repeatable), the histograms, and batch-building
//! helpers that fill device batches with SPD or general matrices.

pub mod dist;
pub mod histogram;

pub use dist::SizeDist;
pub use histogram::Histogram;

use rand::Rng;
use vbatch_dense::gen::{diag_dominant_vec, spd_vec};
use vbatch_dense::Scalar;

/// Fills an already-allocated square batch with SPD matrices (seeded by
/// the caller's RNG) and returns host copies for verification.
pub fn fill_spd_batch<T: Scalar>(
    batch: &mut vbatch_core::VBatch<T>,
    sizes: &[usize],
    rng: &mut impl Rng,
) -> Vec<Vec<T>> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let m = spd_vec::<T>(rng, n);
            if n > 0 {
                batch
                    .upload_matrix(i, &m)
                    .expect("matrix i fits the batch it was sized for");
            }
            m
        })
        .collect()
}

/// Fills a general rectangular batch with diagonally-dominant matrices.
pub fn fill_general_batch<T: Scalar>(
    batch: &mut vbatch_core::VBatch<T>,
    dims: &[(usize, usize)],
    rng: &mut impl Rng,
) -> Vec<Vec<T>> {
    dims.iter()
        .enumerate()
        .map(|(i, &(m, n))| {
            let a = diag_dominant_vec::<T>(rng, m, n);
            if m * n > 0 {
                batch
                    .upload_matrix(i, &a)
                    .expect("matrix i fits the batch it was sized for");
            }
            a
        })
        .collect()
}
