//! Size histograms (paper Fig. 3).

/// A histogram of matrix sizes with fixed-width bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: usize,
    max: usize,
    counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram of `sizes` with `bin_width`-wide bins over
    /// `[1, max]`.
    #[must_use]
    pub fn new(sizes: &[usize], max: usize, bin_width: usize) -> Self {
        let bin_width = bin_width.max(1);
        let bins = max.div_ceil(bin_width).max(1);
        let mut counts = vec![0usize; bins];
        for &s in sizes {
            if s == 0 {
                continue;
            }
            let b = ((s - 1) / bin_width).min(bins - 1);
            counts[b] += 1;
        }
        Self {
            bin_width,
            max,
            counts,
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Inclusive size range of bin `b`.
    #[must_use]
    pub fn bin_range(&self, b: usize) -> (usize, usize) {
        let lo = b * self.bin_width + 1;
        let hi = ((b + 1) * self.bin_width).min(self.max);
        (lo, hi)
    }

    /// Total number of samples counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Renders an ASCII bar chart (one line per bin), the harness's
    /// stand-in for the paper's Fig. 3 plots.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (b, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_range(b);
            let bar = "#".repeat(c * width / peak);
            out.push_str(&format!("{lo:>5}-{hi:<5} |{bar:<w$}| {c}\n", w = width));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let h = Histogram::new(&[1, 8, 9, 16, 17, 32], 32, 8);
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.bin_range(0), (1, 8));
        assert_eq!(h.bin_range(3), (25, 32));
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn zero_sizes_ignored() {
        let h = Histogram::new(&[0, 0, 5], 10, 5);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn render_contains_bars() {
        let h = Histogram::new(&[1, 1, 1, 6], 10, 5);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn ragged_final_bin() {
        let h = Histogram::new(&[33], 33, 8);
        assert_eq!(h.counts().len(), 5);
        assert_eq!(h.bin_range(4), (33, 33));
        assert_eq!(h.counts()[4], 1);
    }
}
