//! Matrix size distributions (paper §IV-B).

use rand::Rng;

/// A distribution of matrix sizes for a vbatched test case.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeDist {
    /// Uniform over `[1, max]` (paper Fig. 3a).
    Uniform {
        /// Largest size in the batch.
        max: usize,
    },
    /// Gaussian centered at `⌊max/2⌋`, clamped to `[1, max]`
    /// (paper Fig. 3b); the standard deviation is `max/6` so the
    /// interval covers ±3σ.
    Gaussian {
        /// Largest size in the batch.
        max: usize,
    },
    /// Every matrix the same size (the fixed-size baseline).
    Fixed {
        /// The common size.
        size: usize,
    },
    /// Two sharp modes (paper future work: "test the impact of
    /// different size distributions"): most matrices tiny, a fraction
    /// near `max` — the pattern of block-Jacobi preconditioners with a
    /// few dense coupling blocks.
    Bimodal {
        /// Size of the small mode.
        small: usize,
        /// Size of the large mode (the batch maximum).
        max: usize,
        /// Fraction of matrices in the large mode (0..=1).
        large_fraction: f64,
    },
    /// Geometrically clustered sizes, the shape of multifrontal
    /// elimination-tree levels: sizes `max / 2^k` with populations
    /// growing toward the small end.
    Clustered {
        /// Largest size (root front).
        max: usize,
        /// Number of clusters (tree levels).
        levels: usize,
    },
}

impl SizeDist {
    /// Largest size this distribution can emit.
    #[must_use]
    pub fn max_size(&self) -> usize {
        match *self {
            SizeDist::Uniform { max }
            | SizeDist::Gaussian { max }
            | SizeDist::Bimodal { max, .. }
            | SizeDist::Clustered { max, .. } => max,
            SizeDist::Fixed { size } => size,
        }
    }

    /// Draws one size.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        match *self {
            SizeDist::Uniform { max } => rng.gen_range(1..=max.max(1)),
            SizeDist::Gaussian { max } => {
                let max = max.max(1);
                let mean = (max / 2) as f64;
                let sd = (max as f64 / 6.0).max(1.0);
                // Box–Muller (avoids an extra dependency).
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let v = (mean + sd * z).round();
                v.clamp(1.0, max as f64) as usize
            }
            SizeDist::Fixed { size } => size,
            SizeDist::Bimodal {
                small,
                max,
                large_fraction,
            } => {
                if rng.gen_range(0.0..1.0) < large_fraction.clamp(0.0, 1.0) {
                    max.max(1)
                } else {
                    small.clamp(1, max)
                }
            }
            SizeDist::Clustered { max, levels } => {
                let levels = levels.clamp(1, 16);
                // Level k holds ~2^k× the population of level k−1 and
                // sizes max / 2^k (root level k = 0 is rare).
                let total: f64 = (0..levels).map(|k| (1u64 << k) as f64).sum();
                let mut pick = rng.gen_range(0.0..total);
                let mut level = levels - 1;
                for k in 0..levels {
                    let w = (1u64 << k) as f64;
                    if pick < w {
                        level = k;
                        break;
                    }
                    pick -= w;
                }
                (max >> level).max(1)
            }
        }
    }

    /// Draws a whole batch of sizes.
    pub fn sample_batch(&self, rng: &mut impl Rng, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Label used in benchmark output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SizeDist::Uniform { .. } => "uniform",
            SizeDist::Gaussian { .. } => "gaussian",
            SizeDist::Fixed { .. } => "fixed",
            SizeDist::Bimodal { .. } => "bimodal",
            SizeDist::Clustered { .. } => "clustered",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbatch_dense::gen::seeded_rng;

    #[test]
    fn uniform_bounds_and_coverage() {
        let mut rng = seeded_rng(1);
        let d = SizeDist::Uniform { max: 512 };
        let sizes = d.sample_batch(&mut rng, 2000);
        assert!(sizes.iter().all(|&n| (1..=512).contains(&n)));
        // Paper Fig. 3a: "most sizes appear at least once".
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(
            distinct.len() > 450,
            "only {} distinct sizes",
            distinct.len()
        );
    }

    #[test]
    fn gaussian_concentrates_at_mean() {
        let mut rng = seeded_rng(2);
        let d = SizeDist::Gaussian { max: 512 };
        let sizes = d.sample_batch(&mut rng, 2000);
        assert!(sizes.iter().all(|&n| (1..=512).contains(&n)));
        let near_mean = sizes.iter().filter(|&&n| (192..=320).contains(&n)).count();
        let near_edges = sizes.iter().filter(|&&n| n <= 64 || n >= 448).count();
        assert!(
            near_mean > 10 * near_edges.max(1),
            "mean {near_mean} vs edges {near_edges}"
        );
        // Sample mean close to 256.
        let mean: f64 = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((mean - 256.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = SizeDist::Gaussian { max: 128 };
        let a = d.sample_batch(&mut seeded_rng(7), 100);
        let b = d.sample_batch(&mut seeded_rng(7), 100);
        assert_eq!(a, b);
        let c = d.sample_batch(&mut seeded_rng(8), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn fixed_is_constant() {
        let mut rng = seeded_rng(3);
        let d = SizeDist::Fixed { size: 37 };
        assert!(d.sample_batch(&mut rng, 50).iter().all(|&n| n == 37));
        assert_eq!(d.max_size(), 37);
    }

    #[test]
    fn bimodal_has_two_modes() {
        let mut rng = seeded_rng(5);
        let d = SizeDist::Bimodal {
            small: 16,
            max: 256,
            large_fraction: 0.1,
        };
        let sizes = d.sample_batch(&mut rng, 1000);
        let small = sizes.iter().filter(|&&n| n == 16).count();
        let large = sizes.iter().filter(|&&n| n == 256).count();
        assert_eq!(small + large, 1000, "exactly two modes");
        assert!((50..200).contains(&large), "large mode count {large}");
        assert_eq!(d.max_size(), 256);
        assert_eq!(d.label(), "bimodal");
    }

    #[test]
    fn clustered_population_grows_toward_leaves() {
        let mut rng = seeded_rng(6);
        let d = SizeDist::Clustered {
            max: 512,
            levels: 4,
        };
        let sizes = d.sample_batch(&mut rng, 3000);
        // Sizes restricted to {512, 256, 128, 64}.
        for &n in &sizes {
            assert!([512, 256, 128, 64].contains(&n), "unexpected size {n}");
        }
        let count = |v: usize| sizes.iter().filter(|&&n| n == v).count();
        assert!(count(64) > count(128));
        assert!(count(128) > count(256));
        assert!(count(256) > count(512));
        assert!(count(512) > 0);
    }

    #[test]
    fn degenerate_max_one() {
        let mut rng = seeded_rng(4);
        for d in [SizeDist::Uniform { max: 1 }, SizeDist::Gaussian { max: 1 }] {
            assert!(d.sample_batch(&mut rng, 20).iter().all(|&n| n == 1));
        }
    }
}
